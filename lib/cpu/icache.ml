(** Page-versioned decoded-instruction cache and threaded-code block
    compiler.

    Sits between {!Sim_mem.Mem} and {!Cpu}: the CPU's hot loop asks
    this module for the decoded instruction at [rip] before falling
    back to the byte-at-a-time fetch/decode path.  Entries are keyed
    by (page number, in-page offset) and validated against the page's
    generation counter in {!Sim_mem.Mem} — every writer of executable
    memory (the lazypoline SIGSYS rewriter, zpoline's load-time sweep,
    JIT emission, the loader, mmap/mprotect/munmap) bumps that
    generation through the one interface in [Mem], so a hit can never
    return a stale decode of self-modified code.  This is the same
    invalidation problem real binary-translation caches face against
    SMC, solved the same way: versioned code pages.

    Validation is pull-based and two-level:

    + the address-space-wide {e code-mutation epoch}
      ({!Sim_mem.Mem.code_mut_count}) is compared against the value
      memoised at the last validation — while nothing executable has
      changed anywhere, a hit on the current page costs an array read;
    + when the epoch has moved, the page's generation is re-read and
      compared to the cached one; on mismatch the page's entries (and
      its compiled blocks) are dropped and re-filled from the current
      bytes.

    Entries never span a page boundary (an instruction straddling two
    pages would need both generations checked); such instructions take
    the uncached path every time — they are rare (at most one per page
    seam) and correctness stays trivially per-page.

    With [superblock] enabled, a miss decodes ahead through the
    straight-line run following the missed instruction and pre-fills
    those entries too, amortising cold-code decode.  Per-entry keying
    makes this unconditionally safe: an entry at offset [o] is the
    decode of the bytes at [o], however execution reaches it.

    {2 The threaded-code block engine}

    On top of the per-instruction cache sits a superblock compiler:
    once an offset has been executed {!heat_threshold} times through
    the per-instruction path, the straight-line run starting there is
    compiled into an array of pre-resolved OCaml closures
    ({!compile_op}) — operands resolved to direct register/immediate
    accessors, the {!Cpu.exec} dispatch match flattened away.  The
    block runner in {!Cpu} then retires the whole run without
    per-instruction dispatch, accumulating the exact per-instruction
    cycle costs ({!Ctx.account}-equivalent mutations are inlined at
    the head of every closure) for the kernel to charge in bulk.

    Blocks never span a page (decode stops at the seam), so a block's
    validity is exactly one page generation: {!validate} drops a
    page's blocks together with its entries whenever the generation
    moves, and the runner re-checks the generation after every
    memory-writing op so a store into the currently-executing block
    stops it at the next instruction boundary — the same point the
    interpreter would observe the new bytes.

    Blocks exclude [Syscall]/[Hypercall]/[Hlt]/[Int3] (trap outcomes
    the kernel must see per-instruction) and [Rdtsc] (reads the cycle
    clock at execution time, which bulk charging would skew); pure
    control flow ([Jmp]/[Jcc]/[Call]/[Call_reg]/[Jmp_reg]/[Ret]) may
    terminate a block.  Closures bypass the register-access hook
    machinery, so the engine is only entered when no Pin-style hook is
    installed (the kernel falls back to the interpreter otherwise). *)

open Sim_isa
open Sim_mem

type entry = { instr : Isa.instr; ilen : int  (** encoded length *) }

(** One compiled instruction: executes against the context and memory,
    sets [rip], and raises [Mem.Fault]/[Exit] exactly like
    {!Cpu.exec} does for the same instruction. *)
type op = Ctx.t -> Mem.t -> unit

(** A compiled superblock: a straight-line run within one page.  Valid
    exactly while page [b_pn] still has generation [b_gen]. *)
type block = {
  b_pn : int;  (** page the block's bytes live in *)
  b_gen : int;  (** page generation the closures were compiled from *)
  b_start : int;  (** absolute address of op 0 *)
  b_ops : op array;
  b_writes : bool array;
      (** op i can write memory — the runner re-checks the
          code-mutation epoch after these (mid-block SMC) *)
  b_anywrites : bool;  (** any [b_writes] set — false lets the runner
                           skip SMC checks for the whole block *)
  b_maxunits : int;
      (** upper bound on the [last_cost] units the whole block can
          accumulate; a slice budget at or above this needs no per-op
          budget checks *)
  mutable b_epoch : int;
      (** memo of the last address-space code-mutation count the
          runner observed from this block — a cheap filter in front of
          the authoritative page-generation check, so a stale value is
          harmless (it only costs one extra [page_gen] read) *)
  b_fops : (Ctx.t -> Mem.t -> int) array;
      (** superinstruction form: each fop covers [b_flen.(j)]
          consecutive ops and returns the [last_cost] units they
          accumulate.  Runs of plain [nop] collapse into one fop that
          performs the whole [nop_run] arithmetic in O(1) — the
          zpoline sled killer.  Only valid on the cannot-stop path
          (whole-block entry, no observers, no writes, budget covers
          [b_maxunits]): intermediate per-instruction states are
          unobservable there, so skipping them is invisible.  Empty
          for blocks with memory-writing ops, which never take that
          path. *)
  b_flen : int array;  (** instructions covered by each fop *)
}

type page_entries = {
  mutable gen : int;  (** Mem generation the decodes are valid for *)
  entries : entry option array;  (** one slot per in-page offset *)
  mutable blocks : (block * int) option array;
      (** offset of ANY compiled op -> (its block, op index), so
          mid-block entry (signal return, budget resume, jumps into
          the middle) lands inside the block; allocated lazily on the
          first engine lookup of the page *)
  mutable heat : int array;
      (** per-offset execution counter driving compilation; [min_int]
          marks offsets that failed to compile (excluded head
          instruction) so they stop re-attempting *)
  mutable nblocks : int;  (** distinct blocks registered in [blocks] *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;  (** lookups that filled a fresh decode *)
  mutable invalidations : int;  (** page drops due to a stale generation *)
  mutable fallbacks : int;
      (** lookups punted to the uncached path: page not executable,
          instruction straddles a page seam, or undecodable bytes *)
}

(** Block-engine counters (per cache instance). *)
type bstats = {
  mutable bs_compiled : int;  (** blocks compiled *)
  mutable bs_hits : int;  (** block entries (not per-op) *)
  mutable bs_kills : int;  (** blocks dropped by page invalidation *)
  mutable bs_fb_cold : int;
      (** per-instruction fallbacks below the heat threshold *)
  mutable bs_fb_uncompilable : int;
      (** per-instruction fallbacks at offsets that cannot head a
          block (syscall/hypercall/hlt/int3/rdtsc, undecodable) *)
}

type t = {
  pages : (int, page_entries) Hashtbl.t;
  superblock : bool;
  stats : stats;
  bstats : bstats;
  (* Memo of the last validated page: while the epoch is unchanged and
     execution stays on the page, lookups skip both hashtables. *)
  mutable last_pn : int;
  mutable last_pe : page_entries;
  mutable last_epoch : int;
  mutable on_invalidate : (int -> unit) option;
      (** observer called with the page number when a stale generation
          drops that page's entries (the event tracer's hook) *)
}

(* Process-wide counters, aggregated across every cache instance that
   ever ran; the benchmark harness reports these alongside wall-clock
   throughput.  Kept separate from [stats] so per-kernel tests can
   still assert on their own instance. *)
let g_hits = ref 0
let g_misses = ref 0
let g_invalidations = ref 0
let g_fallbacks = ref 0

let totals () = (!g_hits, !g_misses, !g_invalidations, !g_fallbacks)

(* Block-engine process-wide counters.  The first five mirror
   [bstats]; [g_block_insns] and the [g_bexit_*] exit-reason counters
   are maintained by the block runner in {!Cpu}. *)
let g_blocks_compiled = ref 0
let g_block_hits = ref 0
let g_block_kills = ref 0
let g_block_fb_cold = ref 0
let g_block_fb_uncompilable = ref 0
let g_block_fb_hooked = ref 0
(* instructions retired inside blocks *)
let g_block_insns = ref 0

(* Exit reasons: ran to the last op; slice budget exhausted mid-block;
   a store invalidated the executing block; an op faulted (Mem fault
   or division); chaos preemption fired mid-block. *)
let g_bexit_end = ref 0
let g_bexit_budget = ref 0
let g_bexit_smc = ref 0
let g_bexit_fault = ref 0
let g_bexit_preempt = ref 0

let block_totals () =
  ( !g_blocks_compiled, !g_block_hits, !g_block_kills, !g_block_insns,
    !g_block_fb_cold + !g_block_fb_uncompilable + !g_block_fb_hooked )

let fresh_stats () = { hits = 0; misses = 0; invalidations = 0; fallbacks = 0 }

let fresh_bstats () =
  { bs_compiled = 0; bs_hits = 0; bs_kills = 0; bs_fb_cold = 0;
    bs_fb_uncompilable = 0 }

let dummy_page () =
  { gen = -2; entries = [||]; blocks = [||]; heat = [||]; nblocks = 0 }

(** [create ()] makes an empty cache for one address space.  Caches
    must not be shared across address spaces: two diverged forks of
    the same [Mem.t] carry overlapping generation numbers for
    different bytes.  [superblock] enables straight-line decode-ahead
    on misses. *)
let create ?(superblock = true) () =
  {
    pages = Hashtbl.create 32;
    superblock;
    stats = fresh_stats ();
    bstats = fresh_bstats ();
    last_pn = -1;
    last_pe = dummy_page ();
    last_epoch = -1;
    on_invalidate = None;
  }

let stats t = t.stats
let bstats t = t.bstats

(** Count one engine bypass due to an installed register-access hook
    (maintained by the kernel's run loop, which performs that check). *)
let note_hooked_fallback (_t : t) = incr g_block_fb_hooked

(** Drop every cached decode and compiled block (keeps counters).  Not
    needed for correctness — generation validation catches everything
    — but useful for tests and for execve-style full resets. *)
let clear t =
  Hashtbl.reset t.pages;
  t.last_pn <- -1;
  t.last_pe <- dummy_page ();
  t.last_epoch <- -1

(* Raised by the in-page fetch when a decode runs off the page end. *)
exception Page_seam

(* Limit on decode-ahead: one straight-line run's worth of entries.
   Misses re-arm it, so long basic blocks still get covered. *)
let superblock_limit = 64

(* Block compilation bounds.  [block_limit] is ops per block — large
   enough that zpoline's ~500-nop sled compiles into one block, the
   main throughput lever.  [heat_threshold] executions of an offset
   through the per-instruction path trigger compilation. *)
let block_limit = 768
let heat_threshold = 4

let is_control_flow = function
  | Isa.Jmp _ | Isa.Jcc _ | Isa.Call _ | Isa.Call_reg _ | Isa.Jmp_reg _
  | Isa.Ret | Isa.Hlt | Isa.Syscall | Isa.Hypercall _ | Isa.Int3 ->
      true
  | _ -> false

(* Instructions a block must never contain: trap outcomes the kernel
   handles per-instruction, plus [Rdtsc] (reads the live cycle clock,
   which bulk charging would make stale). *)
let block_excluded = function
  | Isa.Syscall | Isa.Hypercall _ | Isa.Hlt | Isa.Int3 | Isa.Rdtsc -> true
  | _ -> false

(* Pure control flow may terminate a block (the closure sets [rip]
   wherever the branch goes; the next dispatch re-enters the engine). *)
let block_terminator = function
  | Isa.Jmp _ | Isa.Jcc _ | Isa.Call _ | Isa.Call_reg _ | Isa.Jmp_reg _
  | Isa.Ret ->
      true
  | _ -> false

(* Decode the instruction at in-page offset [off] from the live page
   bytes, never reading past the page end. *)
let decode_at data off =
  let fetch i =
    let j = off + i in
    if j >= Mem.page_size then raise Page_seam else Char.code (Bytes.get data j)
  in
  Decode.decode fetch

(* Fill [pe] starting at [off] from [data]; returns the entry for
   [off] or [None] if those bytes cannot be cached (seam/invalid). *)
let fill t pe data off =
  match decode_at data off with
  | exception (Page_seam | Decode.Invalid _) -> None
  | ins, len ->
      let e = { instr = ins; ilen = len } in
      pe.entries.(off) <- Some e;
      if t.superblock && not (is_control_flow ins) then begin
        (* Decode ahead through the straight-line successor run. *)
        let o = ref (off + len) and n = ref superblock_limit in
        let continue_ = ref true in
        while !continue_ && !n > 0 && !o < Mem.page_size do
          if pe.entries.(!o) <> None then continue_ := false
          else
            match decode_at data !o with
            | exception (Page_seam | Decode.Invalid _) -> continue_ := false
            | ins', len' ->
                pe.entries.(!o) <- Some { instr = ins'; ilen = len' };
                if is_control_flow ins' then continue_ := false
                else begin
                  o := !o + len';
                  decr n
                end
        done
      end;
      Some e

(* ------------------------------------------------------------------ *)
(* The closure compiler                                                *)

(* Specialised effective-address closure: segment and displacement
   resolved at compile time, one register read at run time. *)
let ea_of seg b disp : Ctx.t -> int =
  let d = Int32.to_int disp in
  match seg with
  | Isa.Seg_none ->
      fun (c : Ctx.t) -> Int64.to_int (Array.unsafe_get c.regs b) + d
  | Isa.Seg_fs ->
      fun (c : Ctx.t) ->
        c.fs_base + Int64.to_int (Array.unsafe_get c.regs b) + d
  | Isa.Seg_gs ->
      fun (c : Ctx.t) ->
        c.gs_base + Int64.to_int (Array.unsafe_get c.regs b) + d

let cond_of cond : Ctx.t -> bool =
  match cond with
  | Isa.Eq -> fun c -> c.Ctx.zf
  | Isa.Ne -> fun c -> not c.Ctx.zf
  | Isa.Lt -> fun c -> c.Ctx.sf
  | Isa.Le -> fun c -> c.Ctx.sf || c.Ctx.zf
  | Isa.Gt -> fun c -> not (c.Ctx.sf || c.Ctx.zf)
  | Isa.Ge -> fun c -> not c.Ctx.sf
  | Isa.Ult -> fun c -> c.Ctx.cf
  | Isa.Uge -> fun c -> not c.Ctx.cf

(* The account-equivalent prologue of every non-nop closure
   ({!Ctx.account}'s default arm, inlined). *)
let[@inline] a1 (c : Ctx.t) =
  c.nop_run <- 0;
  c.last_cost <- 1

let[@inline] setf (c : Ctx.t) (v : int64) =
  c.zf <- Int64.equal v 0L;
  c.sf <- Int64.compare v 0L < 0;
  c.cf <- false

let alu_fn = function
  | Isa.Add -> Int64.add
  | Isa.Sub -> Int64.sub
  | Isa.And -> Int64.logand
  | Isa.Or -> Int64.logor
  | Isa.Xor -> Int64.logxor
  | Isa.Mul -> Int64.mul
  | Isa.Cmp | Isa.Div | Isa.Rem -> assert false

(** Compile one instruction whose encoding ends at [next] into a
    closure, or [None] when it is excluded from blocks.  The closure
    performs the {!Ctx.account} mutation first (even a faulting
    instruction mutates [nop_run]/[last_cost], exactly like
    {!Cpu.exec}), then the instruction body in the interpreter's exact
    operation order, then sets [rip] — so a raised fault leaves [rip]
    at the faulting instruction.  Hooks never fire: the engine is only
    entered with no hook installed, where [get_reg]/[set_reg] degrade
    to the direct accesses used here.  Returns the closure and whether
    the op can write memory. *)
let compile_op (ins : Isa.instr) (next : int) : (op * bool) option =
  let open Ctx in
  let rd (c : Ctx.t) r = Array.unsafe_get c.regs r in
  let wr (c : Ctx.t) r v = Array.unsafe_set c.regs r v in
  match ins with
  | Isa.Syscall | Isa.Hypercall _ | Isa.Hlt | Isa.Int3 | Isa.Rdtsc -> None
  | Isa.Nop ->
      Some
        ( (fun c _ ->
            c.nop_run <- c.nop_run + 1;
            c.last_cost <- (if c.nop_run land 3 = 0 then 1 else 0);
            c.rip <- next),
          false )
  | Isa.Nopw n ->
      Some
        ( (fun c _ ->
            c.nop_run <- 0;
            c.last_cost <- n;
            c.rip <- next),
          false )
  | Isa.Ret ->
      Some
        ( (fun c mem ->
            a1 c;
            c.rip <- Int64.to_int (pop c mem)),
          false )
  | Isa.Wrpkru r ->
      Some
        ( (fun c _ ->
            c.nop_run <- 0;
            c.last_cost <- 23;
            c.pkru <- Int64.to_int (rd c r) land 0xFFFF;
            c.rip <- next),
          false )
  | Isa.Rdpkru r ->
      Some
        ( (fun c _ ->
            a1 c;
            wr c r (Int64.of_int c.pkru);
            c.rip <- next),
          false )
  | Isa.Call_reg r ->
      Some
        ( (fun c mem ->
            a1 c;
            let tgt = rd c r in
            push c mem (Int64.of_int next);
            c.rip <- Int64.to_int tgt),
          true )
  | Isa.Jmp_reg r ->
      Some
        ( (fun c _ ->
            a1 c;
            c.rip <- Int64.to_int (rd c r)),
          false )
  | Isa.Push r ->
      Some
        ( (fun c mem ->
            a1 c;
            push c mem (rd c r);
            c.rip <- next),
          true )
  | Isa.Pop r ->
      Some
        ( (fun c mem ->
            a1 c;
            wr c r (pop c mem);
            c.rip <- next),
          false )
  | Isa.Mov_rr (d, s) ->
      Some
        ( (fun c _ ->
            a1 c;
            wr c d (rd c s);
            c.rip <- next),
          false )
  | Isa.Mov_ri (r, v) ->
      Some
        ( (fun c _ ->
            a1 c;
            wr c r v;
            c.rip <- next),
          false )
  | Isa.Mov_ri32 (r, v) ->
      let v64 = Int64.of_int32 v in
      Some
        ( (fun c _ ->
            a1 c;
            wr c r v64;
            c.rip <- next),
          false )
  | Isa.Load (seg, d, b, disp) ->
      let ea = ea_of seg b disp in
      Some
        ( (fun c mem ->
            a1 c;
            let v = Mem.read_u64 mem (ea c) in
            wr c d v;
            c.rip <- next),
          false )
  | Isa.Store (seg, b, disp, s) ->
      let ea = ea_of seg b disp in
      Some
        ( (fun c mem ->
            a1 c;
            let a = ea c in
            wcheck c mem a;
            Mem.write_u64 mem a (rd c s);
            c.rip <- next),
          true )
  | Isa.Load8 (seg, d, b, disp) ->
      let ea = ea_of seg b disp in
      Some
        ( (fun c mem ->
            a1 c;
            let v = Int64.of_int (Mem.read_u8 mem (ea c)) in
            wr c d v;
            c.rip <- next),
          false )
  | Isa.Store8 (seg, b, disp, s) ->
      let ea = ea_of seg b disp in
      Some
        ( (fun c mem ->
            a1 c;
            let a = ea c in
            wcheck c mem a;
            Mem.write_u8 mem a (Int64.to_int (rd c s) land 0xFF);
            c.rip <- next),
          true )
  | Isa.Lea (d, b, disp) ->
      let di = Int32.to_int disp in
      Some
        ( (fun c _ ->
            a1 c;
            wr c d (Int64.of_int (Int64.to_int (rd c b) + di));
            c.rip <- next),
          false )
  | Isa.Alu_rr (Isa.Cmp, d, s) ->
      Some
        ( (fun c _ ->
            a1 c;
            let a = rd c d and b = rd c s in
            c.zf <- Int64.equal a b;
            c.sf <- Int64.compare a b < 0;
            c.cf <- Int64.unsigned_compare a b < 0;
            c.rip <- next),
          false )
  | Isa.Alu_rr (((Isa.Div | Isa.Rem) as op), d, s) ->
      let isdiv = op = Isa.Div in
      Some
        ( (fun c _ ->
            a1 c;
            let a = rd c d and b = rd c s in
            if Int64.equal b 0L then raise Exit
            else begin
              let v = if isdiv then Int64.div a b else Int64.rem a b in
              wr c d v;
              setf c v
            end;
            c.rip <- next),
          false )
  | Isa.Alu_rr (op, d, s) ->
      let f = alu_fn op in
      Some
        ( (fun c _ ->
            a1 c;
            let v = f (rd c d) (rd c s) in
            wr c d v;
            setf c v;
            c.rip <- next),
          false )
  | Isa.Alu_ri (Isa.Cmp, r, imm) ->
      let b = Int64.of_int32 imm in
      Some
        ( (fun c _ ->
            a1 c;
            let a = rd c r in
            c.zf <- Int64.equal a b;
            c.sf <- Int64.compare a b < 0;
            c.cf <- Int64.unsigned_compare a b < 0;
            c.rip <- next),
          false )
  | Isa.Alu_ri (((Isa.Mul | Isa.Div | Isa.Rem) as _op), _, _) ->
      (* exec asserts these never reach Alu_ri; keep them out of
         blocks so the interpreter's assert stays authoritative *)
      None
  | Isa.Alu_ri (op, r, imm) ->
      let f = alu_fn op and b = Int64.of_int32 imm in
      Some
        ( (fun c _ ->
            a1 c;
            let v = f (rd c r) b in
            wr c r v;
            setf c v;
            c.rip <- next),
          false )
  | Isa.Shift (op, r, n) ->
      let f =
        match op with
        | Isa.Shl -> fun a -> Int64.shift_left a n
        | Isa.Shr -> fun a -> Int64.shift_right_logical a n
        | Isa.Sar -> fun a -> Int64.shift_right a n
      in
      Some
        ( (fun c _ ->
            a1 c;
            let v = f (rd c r) in
            wr c r v;
            setf c v;
            c.rip <- next),
          false )
  | Isa.Jmp rel ->
      let tgt = next + Int32.to_int rel in
      Some
        ( (fun c _ ->
            a1 c;
            c.rip <- tgt),
          false )
  | Isa.Jcc (cond, rel) ->
      let test = cond_of cond and tgt = next + Int32.to_int rel in
      Some
        ( (fun c _ ->
            a1 c;
            c.rip <- (if test c then tgt else next)),
          false )
  | Isa.Call rel ->
      let tgt = next + Int32.to_int rel in
      Some
        ( (fun c mem ->
            a1 c;
            push c mem (Int64.of_int next);
            c.rip <- tgt),
          true )
  | Isa.Setcc (cond, r) ->
      let test = cond_of cond in
      Some
        ( (fun c _ ->
            a1 c;
            wr c r (if test c then 1L else 0L);
            c.rip <- next),
          false )
  | Isa.Movq_xr (x, r) ->
      Some
        ( (fun c _ ->
            a1 c;
            let v = rd c r in
            c.x.xmm_lo.(x) <- v;
            c.x.xmm_hi.(x) <- 0L;
            c.rip <- next),
          false )
  | Isa.Movq_rx (r, x) ->
      Some
        ( (fun c _ ->
            a1 c;
            wr c r c.x.xmm_lo.(x);
            c.rip <- next),
          false )
  | Isa.Movups_load (seg, x, b, disp) ->
      let ea = ea_of seg b disp in
      Some
        ( (fun c mem ->
            a1 c;
            let a = ea c in
            let lo = Mem.read_u64 mem a and hi = Mem.read_u64 mem (a + 8) in
            c.x.xmm_lo.(x) <- lo;
            c.x.xmm_hi.(x) <- hi;
            c.rip <- next),
          false )
  | Isa.Movups_store (seg, b, disp, x) ->
      let ea = ea_of seg b disp in
      Some
        ( (fun c mem ->
            a1 c;
            let a = ea c in
            wcheck c mem a;
            Mem.write_u64 mem a c.x.xmm_lo.(x);
            Mem.write_u64 mem (a + 8) c.x.xmm_hi.(x);
            c.rip <- next),
          true )
  | Isa.Punpcklqdq (d, s) ->
      Some
        ( (fun c _ ->
            a1 c;
            c.x.xmm_hi.(d) <- c.x.xmm_lo.(s);
            c.rip <- next),
          false )
  | Isa.Pxor (d, s) when d = s ->
      Some
        ( (fun c _ ->
            a1 c;
            c.x.xmm_lo.(d) <- 0L;
            c.x.xmm_hi.(d) <- 0L;
            c.rip <- next),
          false )
  | Isa.Pxor (d, s) ->
      Some
        ( (fun c _ ->
            a1 c;
            c.x.xmm_lo.(d) <- Int64.logxor c.x.xmm_lo.(d) c.x.xmm_lo.(s);
            c.x.xmm_hi.(d) <- Int64.logxor c.x.xmm_hi.(d) c.x.xmm_hi.(s);
            c.rip <- next),
          false )
  | Isa.Fld1 ->
      let bits = Int64.bits_of_float 1.0 in
      Some
        ( (fun c _ ->
            a1 c;
            x87_push c bits;
            c.rip <- next),
          false )
  | Isa.Fldz ->
      let bits = Int64.bits_of_float 0.0 in
      Some
        ( (fun c _ ->
            a1 c;
            x87_push c bits;
            c.rip <- next),
          false )
  | Isa.Faddp ->
      Some
        ( (fun c _ ->
            a1 c;
            let a = Int64.float_of_bits (x87_pop c) in
            if c.x.st_sp > 0 then
              c.x.st.(c.x.st_sp - 1) <-
                Int64.bits_of_float
                  (a +. Int64.float_of_bits c.x.st.(c.x.st_sp - 1));
            c.rip <- next),
          false )
  | Isa.Fstp (seg, b, disp) ->
      let ea = ea_of seg b disp in
      Some
        ( (fun c mem ->
            a1 c;
            let v = x87_pop c in
            let a = ea c in
            wcheck c mem a;
            Mem.write_u64 mem a v;
            c.rip <- next),
          true )

(* Compile the straight-line run at in-page offset [off] of page [pn]
   into a block and register every op's offset in [pe.blocks].
   Returns the (block, 0) pair for [off], or [None] when the head
   instruction is excluded/undecodable. *)
(* Compile-time upper bound on one instruction's [last_cost] units
   (see {!Ctx.account}: a nop retires for 0 or 1 depending on the
   dynamic run length, so its bound is 1). *)
let max_units = function
  | Isa.Nop -> 1
  | Isa.Nopw n -> n
  | Isa.Wrpkru _ -> 23
  | _ -> 1

(* Fuse an op sequence into superinstructions: maximal runs of plain
   [nop] become one closure doing the whole [nop_run] arithmetic in
   O(1) (the units a run of [k] nops retires for is the count of
   multiples of 4 in (r, r+k] where [r] is the entry [nop_run] — see
   {!Ctx.account}); everything else wraps 1:1, returning its
   [last_cost].  [items] carries (instr, op, next-rip) in order. *)
let fuse (items : (Isa.instr * op * int) list) :
    (Ctx.t -> Mem.t -> int) array * int array =
  let open Ctx in
  let fops = ref [] and flens = ref [] in
  let emit f k =
    fops := f :: !fops;
    flens := k :: !flens
  in
  let rec go = function
    | [] -> ()
    | (Isa.Nop, op, next) :: rest ->
        let rec count k next = function
          | (Isa.Nop, _, next') :: rest' -> count (k + 1) next' rest'
          | rest' -> (k, next, rest')
        in
        let k, next, rest = count 1 next rest in
        if k = 1 then
          emit
            (fun c mem ->
              op c mem;
              c.last_cost)
            1
        else
          emit
            (fun c _mem ->
              let r0 = c.nop_run in
              let r1 = r0 + k in
              c.nop_run <- r1;
              c.last_cost <- (if r1 land 3 = 0 then 1 else 0);
              c.rip <- next;
              (r1 lsr 2) - (r0 lsr 2))
            k;
        go rest
    | (_, op, _) :: rest ->
        emit
          (fun c mem ->
            op c mem;
            c.last_cost)
          1;
        go rest
  in
  go items;
  (Array.of_list (List.rev !fops), Array.of_list (List.rev !flens))

let compile t pe mem pn off : (block * int) option =
  match Mem.exec_page_data mem pn with
  | None -> None
  | Some data ->
      let base = pn lsl Mem.page_shift in
      let items = ref [] and writes = ref [] and offs = ref [] in
      let o = ref off and stop = ref false and n = ref 0 in
      let units = ref 0 in
      while (not !stop) && !n < block_limit do
        match decode_at data !o with
        | exception (Page_seam | Decode.Invalid _) -> stop := true
        | ins, len -> (
            match compile_op ins (base + !o + len) with
            | None -> stop := true
            | Some (f, w) ->
                items := (ins, f, base + !o + len) :: !items;
                writes := w :: !writes;
                offs := !o :: !offs;
                units := !units + max_units ins;
                incr n;
                if block_terminator ins then stop := true
                else o := !o + len)
      done;
      if !n = 0 then None
      else begin
        let items = List.rev !items in
        let writes = Array.of_list (List.rev !writes) in
        let anywrites = Array.exists (fun w -> w) writes in
        let fops, flens =
          if anywrites then ([||], [||]) else fuse items
        in
        let blk =
          {
            b_pn = pn;
            b_gen = pe.gen;
            b_start = base + off;
            b_ops = Array.of_list (List.map (fun (_, f, _) -> f) items);
            b_writes = writes;
            b_anywrites = anywrites;
            b_maxunits = !units;
            b_epoch = Mem.code_mut_count mem;
            b_fops = fops;
            b_flen = flens;
          }
        in
        List.iteri
          (fun i o -> pe.blocks.(o) <- Some (blk, !n - 1 - i))
          !offs;
        pe.nblocks <- pe.nblocks + 1;
        t.bstats.bs_compiled <- t.bstats.bs_compiled + 1;
        incr g_blocks_compiled;
        Some (blk, 0)
      end

(* ------------------------------------------------------------------ *)
(* Validation and lookup                                               *)

(* Locate (or create) and validate the entry table for page [pn]. *)
let validate t mem pn epoch =
  let pe =
    match Hashtbl.find_opt t.pages pn with
    | Some pe ->
        let g = Mem.page_gen mem pn in
        if pe.gen <> g then begin
          t.stats.invalidations <- t.stats.invalidations + 1;
          incr g_invalidations;
          (match t.on_invalidate with Some f -> f pn | None -> ());
          Array.fill pe.entries 0 Mem.page_size None;
          if pe.nblocks > 0 then begin
            (* Block kills: every compiled block on the page dies with
               the generation.  Heat is refilled to the threshold so
               hot code recompiles on its first post-SMC execution
               instead of re-warming from zero. *)
            t.bstats.bs_kills <- t.bstats.bs_kills + pe.nblocks;
            g_block_kills := !g_block_kills + pe.nblocks;
            Array.fill pe.blocks 0 Mem.page_size None;
            pe.nblocks <- 0
          end;
          if Array.length pe.heat > 0 then
            Array.fill pe.heat 0 Mem.page_size heat_threshold;
          pe.gen <- g
        end;
        pe
    | None ->
        let pe =
          { gen = Mem.page_gen mem pn;
            entries = Array.make Mem.page_size None;
            blocks = [||];
            heat = [||];
            nblocks = 0 }
        in
        Hashtbl.replace t.pages pn pe;
        pe
  in
  t.last_pn <- pn;
  t.last_pe <- pe;
  t.last_epoch <- epoch;
  pe

(** The CPU front end: decoded instruction at [rip], or [None] when
    the caller must take the uncached byte-at-a-time path (page seam,
    non-executable or unmapped page, undecodable bytes — the fallback
    reproduces the architecturally correct fault in each case). *)
let find t mem rip : entry option =
  let pn = rip lsr Mem.page_shift in
  let epoch = Mem.code_mut_count mem in
  let pe =
    if pn = t.last_pn && epoch = t.last_epoch then t.last_pe
    else validate t mem pn epoch
  in
  let off = rip land Mem.page_mask in
  match pe.entries.(off) with
  | Some _ as e ->
      t.stats.hits <- t.stats.hits + 1;
      incr g_hits;
      e
  | None -> (
      match Mem.exec_page_data mem pn with
      | None ->
          t.stats.fallbacks <- t.stats.fallbacks + 1;
          incr g_fallbacks;
          None
      | Some data -> (
          match fill t pe data off with
          | Some _ as e ->
              t.stats.misses <- t.stats.misses + 1;
              incr g_misses;
              e
          | None ->
              t.stats.fallbacks <- t.stats.fallbacks + 1;
              incr g_fallbacks;
              None))

(** Result of an engine-mode lookup. *)
type hit =
  | Hblock of block * int
      (** compiled block covering [rip], starting at this op index *)
  | Hentry of entry  (** per-instruction decode (cold or uncompilable) *)
  | Hmiss  (** uncached byte-at-a-time path *)

(** Engine-mode front end: like {!find}, but returns a compiled block
    when one covers [rip], and drives heat-based compilation when one
    does not.  Only called with no register-access hook installed (the
    kernel checks; closures bypass the hook machinery). *)
let lookup t mem rip : hit =
  let pn = rip lsr Mem.page_shift in
  let epoch = Mem.code_mut_count mem in
  let pe =
    if pn = t.last_pn && epoch = t.last_epoch then t.last_pe
    else validate t mem pn epoch
  in
  let off = rip land Mem.page_mask in
  if Array.length pe.heat = 0 then begin
    pe.blocks <- Array.make Mem.page_size None;
    pe.heat <- Array.make Mem.page_size 0
  end;
  match pe.blocks.(off) with
  | Some (blk, idx) ->
      t.bstats.bs_hits <- t.bstats.bs_hits + 1;
      incr g_block_hits;
      Hblock (blk, idx)
  | None -> (
      match pe.entries.(off) with
      | Some e ->
          let h = pe.heat.(off) in
          if h >= heat_threshold then begin
            match compile t pe mem pn off with
            | Some (blk, idx) ->
                t.bstats.bs_hits <- t.bstats.bs_hits + 1;
                incr g_block_hits;
                Hblock (blk, idx)
            | None ->
                pe.heat.(off) <- min_int;
                t.bstats.bs_fb_uncompilable <-
                  t.bstats.bs_fb_uncompilable + 1;
                incr g_block_fb_uncompilable;
                t.stats.hits <- t.stats.hits + 1;
                incr g_hits;
                Hentry e
          end
          else begin
            pe.heat.(off) <- h + 1;
            if h < 0 then begin
              t.bstats.bs_fb_uncompilable <- t.bstats.bs_fb_uncompilable + 1;
              incr g_block_fb_uncompilable
            end
            else begin
              t.bstats.bs_fb_cold <- t.bstats.bs_fb_cold + 1;
              incr g_block_fb_cold
            end;
            t.stats.hits <- t.stats.hits + 1;
            incr g_hits;
            Hentry e
          end
      | None -> (
          match Mem.exec_page_data mem pn with
          | None ->
              t.stats.fallbacks <- t.stats.fallbacks + 1;
              incr g_fallbacks;
              Hmiss
          | Some data -> (
              match fill t pe data off with
              | Some e ->
                  t.stats.misses <- t.stats.misses + 1;
                  incr g_misses;
                  Hentry e
              | None ->
                  t.stats.fallbacks <- t.stats.fallbacks + 1;
                  incr g_fallbacks;
                  Hmiss)))
