(** Page-versioned decoded-instruction cache.

    Sits between {!Sim_mem.Mem} and {!Cpu}: the CPU's hot loop asks
    this module for the decoded instruction at [rip] before falling
    back to the byte-at-a-time fetch/decode path.  Entries are keyed
    by (page number, in-page offset) and validated against the page's
    generation counter in {!Sim_mem.Mem} — every writer of executable
    memory (the lazypoline SIGSYS rewriter, zpoline's load-time sweep,
    JIT emission, the loader, mmap/mprotect/munmap) bumps that
    generation through the one interface in [Mem], so a hit can never
    return a stale decode of self-modified code.  This is the same
    invalidation problem real binary-translation caches face against
    SMC, solved the same way: versioned code pages.

    Validation is pull-based and two-level:

    + the address-space-wide {e code-mutation epoch}
      ({!Sim_mem.Mem.code_mut_count}) is compared against the value
      memoised at the last validation — while nothing executable has
      changed anywhere, a hit on the current page costs an array read;
    + when the epoch has moved, the page's generation is re-read and
      compared to the cached one; on mismatch the page's entries are
      dropped and re-filled from the current bytes.

    Entries never span a page boundary (an instruction straddling two
    pages would need both generations checked); such instructions take
    the uncached path every time — they are rare (at most one per page
    seam) and correctness stays trivially per-page.

    With [superblock] enabled, a miss decodes ahead through the
    straight-line run following the missed instruction and pre-fills
    those entries too, amortising cold-code decode.  Per-entry keying
    makes this unconditionally safe: an entry at offset [o] is the
    decode of the bytes at [o], however execution reaches it. *)

open Sim_isa
open Sim_mem

type entry = { instr : Isa.instr; ilen : int  (** encoded length *) }

type page_entries = {
  mutable gen : int;  (** Mem generation the decodes are valid for *)
  entries : entry option array;  (** one slot per in-page offset *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;  (** lookups that filled a fresh decode *)
  mutable invalidations : int;  (** page drops due to a stale generation *)
  mutable fallbacks : int;
      (** lookups punted to the uncached path: page not executable,
          instruction straddles a page seam, or undecodable bytes *)
}

type t = {
  pages : (int, page_entries) Hashtbl.t;
  superblock : bool;
  stats : stats;
  (* Memo of the last validated page: while the epoch is unchanged and
     execution stays on the page, lookups skip both hashtables. *)
  mutable last_pn : int;
  mutable last_pe : page_entries;
  mutable last_epoch : int;
  mutable on_invalidate : (int -> unit) option;
      (** observer called with the page number when a stale generation
          drops that page's entries (the event tracer's hook) *)
}

(* Process-wide counters, aggregated across every cache instance that
   ever ran; the benchmark harness reports these alongside wall-clock
   throughput.  Kept separate from [stats] so per-kernel tests can
   still assert on their own instance. *)
let g_hits = ref 0
let g_misses = ref 0
let g_invalidations = ref 0
let g_fallbacks = ref 0

let totals () = (!g_hits, !g_misses, !g_invalidations, !g_fallbacks)

let fresh_stats () = { hits = 0; misses = 0; invalidations = 0; fallbacks = 0 }

let dummy_page () = { gen = -2; entries = [||] }

(** [create ()] makes an empty cache for one address space.  Caches
    must not be shared across address spaces: two diverged forks of
    the same [Mem.t] carry overlapping generation numbers for
    different bytes.  [superblock] enables straight-line decode-ahead
    on misses. *)
let create ?(superblock = true) () =
  {
    pages = Hashtbl.create 32;
    superblock;
    stats = fresh_stats ();
    last_pn = -1;
    last_pe = dummy_page ();
    last_epoch = -1;
    on_invalidate = None;
  }

let stats t = t.stats

(** Drop every cached decode (keeps counters).  Not needed for
    correctness — generation validation catches everything — but
    useful for tests and for execve-style full resets. *)
let clear t =
  Hashtbl.reset t.pages;
  t.last_pn <- -1;
  t.last_pe <- dummy_page ();
  t.last_epoch <- -1

(* Raised by the in-page fetch when a decode runs off the page end. *)
exception Page_seam

(* Limit on decode-ahead: one straight-line run's worth of entries.
   Misses re-arm it, so long basic blocks still get covered. *)
let superblock_limit = 64

let is_control_flow = function
  | Isa.Jmp _ | Isa.Jcc _ | Isa.Call _ | Isa.Call_reg _ | Isa.Jmp_reg _
  | Isa.Ret | Isa.Hlt | Isa.Syscall | Isa.Hypercall _ | Isa.Int3 ->
      true
  | _ -> false

(* Decode the instruction at in-page offset [off] from the live page
   bytes, never reading past the page end. *)
let decode_at data off =
  let fetch i =
    let j = off + i in
    if j >= Mem.page_size then raise Page_seam else Char.code (Bytes.get data j)
  in
  Decode.decode fetch

(* Fill [pe] starting at [off] from [data]; returns the entry for
   [off] or [None] if those bytes cannot be cached (seam/invalid). *)
let fill t pe data off =
  match decode_at data off with
  | exception (Page_seam | Decode.Invalid _) -> None
  | ins, len ->
      let e = { instr = ins; ilen = len } in
      pe.entries.(off) <- Some e;
      if t.superblock && not (is_control_flow ins) then begin
        (* Decode ahead through the straight-line successor run. *)
        let o = ref (off + len) and n = ref superblock_limit in
        let continue_ = ref true in
        while !continue_ && !n > 0 && !o < Mem.page_size do
          if pe.entries.(!o) <> None then continue_ := false
          else
            match decode_at data !o with
            | exception (Page_seam | Decode.Invalid _) -> continue_ := false
            | ins', len' ->
                pe.entries.(!o) <- Some { instr = ins'; ilen = len' };
                if is_control_flow ins' then continue_ := false
                else begin
                  o := !o + len';
                  decr n
                end
        done
      end;
      Some e

(* Locate (or create) and validate the entry table for page [pn]. *)
let validate t mem pn epoch =
  let pe =
    match Hashtbl.find_opt t.pages pn with
    | Some pe ->
        let g = Mem.page_gen mem pn in
        if pe.gen <> g then begin
          t.stats.invalidations <- t.stats.invalidations + 1;
          incr g_invalidations;
          (match t.on_invalidate with Some f -> f pn | None -> ());
          Array.fill pe.entries 0 Mem.page_size None;
          pe.gen <- g
        end;
        pe
    | None ->
        let pe =
          { gen = Mem.page_gen mem pn;
            entries = Array.make Mem.page_size None }
        in
        Hashtbl.replace t.pages pn pe;
        pe
  in
  t.last_pn <- pn;
  t.last_pe <- pe;
  t.last_epoch <- epoch;
  pe

(** The CPU front end: decoded instruction at [rip], or [None] when
    the caller must take the uncached byte-at-a-time path (page seam,
    non-executable or unmapped page, undecodable bytes — the fallback
    reproduces the architecturally correct fault in each case). *)
let find t mem rip : entry option =
  let pn = rip lsr Mem.page_shift in
  let epoch = Mem.code_mut_count mem in
  let pe =
    if pn = t.last_pn && epoch = t.last_epoch then t.last_pe
    else validate t mem pn epoch
  in
  let off = rip land Mem.page_mask in
  match pe.entries.(off) with
  | Some _ as e ->
      t.stats.hits <- t.stats.hits + 1;
      incr g_hits;
      e
  | None -> (
      match Mem.exec_page_data mem pn with
      | None ->
          t.stats.fallbacks <- t.stats.fallbacks + 1;
          incr g_fallbacks;
          None
      | Some data -> (
          match fill t pe data off with
          | Some _ as e ->
              t.stats.misses <- t.stats.misses + 1;
              incr g_misses;
              e
          | None ->
              t.stats.fallbacks <- t.stats.fallbacks + 1;
              incr g_fallbacks;
              None))
