(** The register context of one task, split out of {!Cpu} so the
    block compiler in {!Icache} can build closures over it without a
    dependency cycle (Ctx -> Icache -> Cpu).  {!Cpu} re-exports
    everything here via [include], so the rest of the tree keeps
    using [Cpu.t], [Cpu.peek_reg], [t.ctx.Cpu.rip] and friends
    unchanged. *)

open Sim_isa
open Sim_mem

(** {1 Extended state (SSE + x87)} *)

type xstate = {
  xmm_lo : int64 array;  (** low 64 bits of xmm0..xmm15 *)
  xmm_hi : int64 array;  (** high 64 bits *)
  st : int64 array;  (** x87 stack slots (bit patterns) *)
  mutable st_sp : int;  (** number of live x87 stack entries, 0..8 *)
}

let xstate_create () =
  { xmm_lo = Array.make 16 0L; xmm_hi = Array.make 16 0L;
    st = Array.make 8 0L; st_sp = 0 }

let xstate_copy x =
  { xmm_lo = Array.copy x.xmm_lo; xmm_hi = Array.copy x.xmm_hi;
    st = Array.copy x.st; st_sp = x.st_sp }

let xstate_restore ~into src =
  Array.blit src.xmm_lo 0 into.xmm_lo 0 16;
  Array.blit src.xmm_hi 0 into.xmm_hi 0 16;
  Array.blit src.st 0 into.st 0 8;
  into.st_sp <- src.st_sp

(** Serialised size of the extended state (xsave area): 16 xmm x 16
    bytes + 8 x87 slots x 8 bytes + 8 bytes of bookkeeping. *)
let xstate_bytes = (16 * 16) + (8 * 8) + 8

let xstate_write_mem (x : xstate) mem addr =
  for i = 0 to 15 do
    Mem.write_u64 mem (addr + (16 * i)) x.xmm_lo.(i);
    Mem.write_u64 mem (addr + (16 * i) + 8) x.xmm_hi.(i)
  done;
  for i = 0 to 7 do
    Mem.write_u64 mem (addr + 256 + (8 * i)) x.st.(i)
  done;
  Mem.write_u64 mem (addr + 320) (Int64.of_int x.st_sp)

let xstate_to_bytes (x : xstate) : string =
  let b = Bytes.create xstate_bytes in
  for i = 0 to 15 do
    Bytes.set_int64_le b (16 * i) x.xmm_lo.(i);
    Bytes.set_int64_le b ((16 * i) + 8) x.xmm_hi.(i)
  done;
  for i = 0 to 7 do
    Bytes.set_int64_le b (256 + (8 * i)) x.st.(i)
  done;
  Bytes.set_int64_le b 320 (Int64.of_int x.st_sp);
  Bytes.unsafe_to_string b

let xstate_of_bytes (x : xstate) (s : string) =
  let b = Bytes.unsafe_of_string s in
  for i = 0 to 15 do
    x.xmm_lo.(i) <- Bytes.get_int64_le b (16 * i);
    x.xmm_hi.(i) <- Bytes.get_int64_le b ((16 * i) + 8)
  done;
  for i = 0 to 7 do
    x.st.(i) <- Bytes.get_int64_le b (256 + (8 * i))
  done;
  x.st_sp <- Int64.to_int (Bytes.get_int64_le b 320) land 15

let xstate_read_mem (x : xstate) mem addr =
  for i = 0 to 15 do
    x.xmm_lo.(i) <- Mem.read_u64 mem (addr + (16 * i));
    x.xmm_hi.(i) <- Mem.read_u64 mem (addr + (16 * i) + 8)
  done;
  for i = 0 to 7 do
    x.st.(i) <- Mem.read_u64 mem (addr + 256 + (8 * i))
  done;
  x.st_sp <- Int64.to_int (Mem.read_u64 mem (addr + 320)) land 15

(** {1 Register context} *)

type hook_event =
  | Reg_read of int
  | Reg_write of int
  | Xmm_read of int
  | Xmm_write of int
  | X87_read
  | X87_write

type t = {
  regs : int64 array;  (** 16 GPRs *)
  mutable rip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  x : xstate;
  mutable fs_base : int;
  mutable gs_base : int;
  mutable hook : (hook_event -> unit) option;
  mutable now : unit -> int64;  (** cycle counter source for [rdtsc] *)
  mutable nop_run : int;
      (** consecutive [nop]s retired; models superscalar nop
          throughput (~4/cycle), which is what makes zpoline-style
          nop sleds cheap on real hardware *)
  mutable last_cost : int;  (** cycle cost of the last [step] *)
  mutable pkru : int;
      (** protection-key rights: bit k set = writes to pkey-k pages
          denied.  0 (default) disables all checking. *)
}

let create () =
  {
    regs = Array.make 16 0L;
    rip = 0;
    zf = false;
    sf = false;
    cf = false;
    x = xstate_create ();
    fs_base = 0;
    gs_base = 0;
    hook = None;
    now = (fun () -> 0L);
    nop_run = 0;
    last_cost = 1;
    pkru = 0;
  }

(** Copy of [t] sharing nothing (for fork/clone and signal frames). *)
let copy (c : t) =
  {
    regs = Array.copy c.regs;
    rip = c.rip;
    zf = c.zf;
    sf = c.sf;
    cf = c.cf;
    x = xstate_copy c.x;
    fs_base = c.fs_base;
    gs_base = c.gs_base;
    hook = c.hook;
    now = c.now;
    nop_run = 0;
    last_cost = 1;
    pkru = c.pkru;
  }

let fire c e = match c.hook with None -> () | Some f -> f e

let get_reg c r =
  fire c (Reg_read r);
  c.regs.(r)

let set_reg c r v =
  fire c (Reg_write r);
  c.regs.(r) <- v

(* Untracked accessors for kernel/interposer use: the kernel reading
   syscall arguments is not an application register use and must not
   register in the Pin analysis. *)
let peek_reg c r = c.regs.(r)
let poke_reg c r v = c.regs.(r) <- v

(** Syscall arguments per the SysV convention. *)
let syscall_args c =
  ( c.regs.(Isa.rdi), c.regs.(Isa.rsi), c.regs.(Isa.rdx), c.regs.(Isa.r10),
    c.regs.(Isa.r8), c.regs.(Isa.r9) )

let flags_of_result c (v : int64) =
  c.zf <- Int64.equal v 0L;
  c.sf <- Int64.compare v 0L < 0;
  c.cf <- false

let seg_base c = function
  | Isa.Seg_none -> 0
  | Isa.Seg_fs -> c.fs_base
  | Isa.Seg_gs -> c.gs_base

let ea c seg base disp =
  seg_base c seg + Int64.to_int (get_reg c base) + Int32.to_int disp

(* Protection-key write check (no-op while pkru = 0). *)
let wcheck c mem addr =
  if c.pkru <> 0 then begin
    let pk = Mem.pkey_at mem addr in
    if pk <> 0 && c.pkru land (1 lsl pk) <> 0 then
      raise (Mem.Fault (addr, Mem.Write))
  end

let push c mem v =
  let sp = Int64.to_int c.regs.(Isa.rsp) - 8 in
  wcheck c mem sp;
  Mem.write_u64 mem sp v;
  c.regs.(Isa.rsp) <- Int64.of_int sp

let pop c mem =
  let sp = Int64.to_int c.regs.(Isa.rsp) in
  let v = Mem.read_u64 mem sp in
  c.regs.(Isa.rsp) <- Int64.of_int (sp + 8);
  v

let cond_holds c = function
  | Isa.Eq -> c.zf
  | Isa.Ne -> not c.zf
  | Isa.Lt -> c.sf
  | Isa.Le -> c.sf || c.zf
  | Isa.Gt -> not (c.sf || c.zf)
  | Isa.Ge -> not c.sf
  | Isa.Ult -> c.cf
  | Isa.Uge -> not c.cf

let x87_push c v =
  if c.x.st_sp >= 8 then c.x.st_sp <- 7;
  (* stack overflow clobbers the top slot, as good as anything *)
  c.x.st.(c.x.st_sp) <- v;
  c.x.st_sp <- c.x.st_sp + 1;
  fire c X87_write

let x87_pop c =
  fire c X87_read;
  if c.x.st_sp = 0 then 0L
  else (
    c.x.st_sp <- c.x.st_sp - 1;
    c.x.st.(c.x.st_sp))

(** Total instructions retired across every CPU instance in the
    process — the benchmark harness divides this by wall-clock time to
    report host-side simulation throughput. *)
let retired = ref 0

(* Per-instruction cycle accounting, identical whether the decode came
   from the icache or the byte-at-a-time path. *)
let account (c : t) (instr : Isa.instr) =
  match instr with
  | Isa.Nop ->
      c.nop_run <- c.nop_run + 1;
      c.last_cost <- (if c.nop_run land 3 = 0 then 1 else 0)
  | Isa.Nopw n ->
      c.nop_run <- 0;
      c.last_cost <- n
  | Isa.Wrpkru _ ->
      (* real WRPKRU serialises; ~23 cycles on current parts *)
      c.nop_run <- 0;
      c.last_cost <- 23
  | _ ->
      c.nop_run <- 0;
      c.last_cost <- 1
