(** Code generation: minicc AST -> x64lite assembly items.

    A straightforward stack machine: every expression leaves its value
    in [rax], binary operators stash the left operand on the machine
    stack.  Locals live at negative [rbp] offsets; arguments are
    passed on the stack (pushed left to right).  The [syscall] builtin
    compiles to a real [syscall] instruction at each textual call
    site, so interposers see one rewritable site per occurrence,
    exactly like inlined libc syscall stubs. *)

open Ast
open Sim_isa
open Sim_asm.Asm

type slot = Lvar of int  (** value at [rbp + off] *) | Lbuf of int  (** buffer starting at [rbp + off] *)

type genv = {
  gvars : (string, string) Hashtbl.t;  (** global var -> data label *)
  gbufs : (string, string) Hashtbl.t;
  funcs : (string, int) Hashtbl.t;  (** name -> arity *)
  mutable strings : (string * string) list;  (** label, contents *)
  mutable next_str : int;
  mutable next_label : int;
  mutable sites : (string * int option * string) list;
      (** every emitted [syscall] instruction: its (zero-byte) label,
          the statically known syscall number when the first argument
          is a literal, and the enclosing function — the raw material
          of the flow-graph extractor.  Collected in reverse emission
          order. *)
}

type fenv = {
  g : genv;
  fname : string;  (** enclosing function, for site attribution *)
  locals : (string, slot) Hashtbl.t;
  mutable frame : int;  (** bytes of locals allocated so far *)
  epilogue : string;
  mutable loop_labels : (string * string) list;  (** break, continue *)
}

let fresh_label g prefix =
  let n = g.next_label in
  g.next_label <- n + 1;
  Printf.sprintf ".%s%d" prefix n

let string_label g s =
  match List.find_opt (fun (_, c) -> c = s) g.strings with
  | Some (l, _) -> l
  | None ->
      let l = Printf.sprintf "str_%d" g.next_str in
      g.next_str <- g.next_str + 1;
      g.strings <- (l, s) :: g.strings;
      l

(* Pre-scan a function body to size the frame and bind local slots. *)
let rec scan_stmts (fe : fenv) stmts = List.iter (scan_stmt fe) stmts

and scan_stmt fe = function
  | Decl (name, _) ->
      if Hashtbl.mem fe.locals name then error "duplicate local %s" name;
      fe.frame <- fe.frame + 8;
      Hashtbl.replace fe.locals name (Lvar (-fe.frame))
  | Decl_buf (name, n) ->
      if Hashtbl.mem fe.locals name then error "duplicate local %s" name;
      let sz = (n + 7) land lnot 7 in
      fe.frame <- fe.frame + sz;
      Hashtbl.replace fe.locals name (Lbuf (-fe.frame))
  | If (_, a, b) ->
      scan_stmts fe a;
      scan_stmts fe b
  | While (_, b) -> scan_stmts fe b
  | For (init, _, step, b) ->
      (match init with Some s -> scan_stmt fe s | None -> ());
      (match step with Some s -> scan_stmt fe s | None -> ());
      scan_stmts fe b
  | Assign _ | Store_byte _ | Expr _ | Return _ | Break | Continue -> ()

let syscall_regs = [| Isa.rax; Isa.rdi; Isa.rsi; Isa.rdx; Isa.r10; Isa.r8; Isa.r9 |]

let rec compile_expr (fe : fenv) (e : expr) : item list =
  match e with
  | Num v -> [ mov_ri64 Isa.rax v ]
  | Str s -> [ Lea_ip (Isa.rax, string_label fe.g s) ]
  | Var name -> (
      match Hashtbl.find_opt fe.locals name with
      | Some (Lvar off) -> [ load Isa.rax Isa.rbp off ]
      | Some (Lbuf off) -> [ lea Isa.rax Isa.rbp off ]
      | None -> (
          match Hashtbl.find_opt fe.g.gvars name with
          | Some lbl -> [ Lea_ip (Isa.rax, lbl); load Isa.rax Isa.rax 0 ]
          | None -> (
              match Hashtbl.find_opt fe.g.gbufs name with
              | Some lbl -> [ Lea_ip (Isa.rax, lbl) ]
              | None -> error "unknown variable %s" name)))
  | Index (b, idx) ->
      compile_expr fe b
      @ [ push Isa.rax ]
      @ compile_expr fe idx
      @ [ mov_rr Isa.rcx Isa.rax; pop Isa.rax; add_rr Isa.rax Isa.rcx;
          load8 Isa.rax Isa.rax 0 ]
  | Un (Neg, e) ->
      compile_expr fe e
      @ [ mov_rr Isa.rcx Isa.rax; mov_ri Isa.rax 0; sub_rr Isa.rax Isa.rcx ]
  | Un (LNot, e) ->
      compile_expr fe e
      @ [ cmp_ri Isa.rax 0; i (Isa.Setcc (Isa.Eq, Isa.rax)) ]
  | Un (BNot, e) ->
      compile_expr fe e @ [ i (Isa.Alu_ri (Isa.Xor, Isa.rax, -1l)) ]
  | Bin (LAnd, a, b) ->
      let out = fresh_label fe.g "andout" in
      compile_expr fe a
      @ [ cmp_ri Isa.rax 0; mov_ri Isa.rax 0; Jcc_l (Isa.Eq, out) ]
      @ compile_expr fe b
      @ [ cmp_ri Isa.rax 0; i (Isa.Setcc (Isa.Ne, Isa.rax)); Label out ]
  | Bin (LOr, a, b) ->
      let out = fresh_label fe.g "orout" in
      compile_expr fe a
      @ [ cmp_ri Isa.rax 0; mov_ri Isa.rax 1; Jcc_l (Isa.Ne, out) ]
      @ compile_expr fe b
      @ [ cmp_ri Isa.rax 0; i (Isa.Setcc (Isa.Ne, Isa.rax)); Label out ]
  | Bin ((Shl | Shr) as op, a, Num n) ->
      let sh = if op = Shl then Isa.Shl else Isa.Shr in
      compile_expr fe a @ [ i (Isa.Shift (sh, Isa.rax, Int64.to_int n land 63)) ]
  | Bin ((Shl | Shr), _, _) ->
      error "shift amounts must be integer literals"
  | Bin (op, a, b) ->
      let cmp c =
        [ cmp_rr Isa.rax Isa.rcx; i (Isa.Setcc (c, Isa.rax)) ]
      in
      let tail =
        match op with
        | Add -> [ add_rr Isa.rax Isa.rcx ]
        | Sub -> [ sub_rr Isa.rax Isa.rcx ]
        | Mul -> [ i (Isa.Alu_rr (Isa.Mul, Isa.rax, Isa.rcx)) ]
        | Div -> [ i (Isa.Alu_rr (Isa.Div, Isa.rax, Isa.rcx)) ]
        | Mod -> [ i (Isa.Alu_rr (Isa.Rem, Isa.rax, Isa.rcx)) ]
        | BAnd -> [ i (Isa.Alu_rr (Isa.And, Isa.rax, Isa.rcx)) ]
        | BOr -> [ i (Isa.Alu_rr (Isa.Or, Isa.rax, Isa.rcx)) ]
        | BXor -> [ i (Isa.Alu_rr (Isa.Xor, Isa.rax, Isa.rcx)) ]
        | Eq -> cmp Isa.Eq
        | Ne -> cmp Isa.Ne
        | Lt -> cmp Isa.Lt
        | Le -> cmp Isa.Le
        | Gt -> cmp Isa.Gt
        | Ge -> cmp Isa.Ge
        | LAnd | LOr | Shl | Shr -> assert false
      in
      compile_expr fe a
      @ [ push Isa.rax ]
      @ compile_expr fe b
      @ [ mov_rr Isa.rcx Isa.rax; pop Isa.rax ]
      @ tail
  | Call ("syscall", args) ->
      let n = List.length args in
      if n < 1 || n > 7 then error "syscall takes 1-7 arguments";
      let nr = match args with Num v :: _ -> Some (Int64.to_int v) | _ -> None in
      let lbl = fresh_label fe.g "sc" in
      fe.g.sites <- (lbl, nr, fe.fname) :: fe.g.sites;
      List.concat_map (fun a -> compile_expr fe a @ [ push Isa.rax ]) args
      @ (List.init n (fun j -> pop syscall_regs.(n - 1 - j)))
      (* the label binds the address of the [syscall] instruction
         itself and emits no bytes, so the binary is unchanged *)
      @ [ Label lbl; syscall ]
  | Call ("peek8", [ p ]) ->
      compile_expr fe p @ [ load8 Isa.rax Isa.rax 0 ]
  | Call ("peek64", [ p ]) ->
      compile_expr fe p @ [ load Isa.rax Isa.rax 0 ]
  | Call ("poke8", [ p; v ]) ->
      compile_expr fe p
      @ [ push Isa.rax ]
      @ compile_expr fe v
      @ [ pop Isa.rcx; store8 Isa.rcx 0 Isa.rax ]
  | Call ("poke64", [ p; v ]) ->
      compile_expr fe p
      @ [ push Isa.rax ]
      @ compile_expr fe v
      @ [ pop Isa.rcx; store Isa.rcx 0 Isa.rax ]
  | Call ("rdtsc", []) -> [ i Isa.Rdtsc ]
  | Call ("work", [ Num n ]) ->
      (* weighted nop: n cycles of modelled straight-line work *)
      let n = Int64.to_int n in
      if n < 0 then error "work() weight must be non-negative";
      List.init ((n / 65535) + 1) (fun j ->
          i (Isa.Nopw (if j < n / 65535 then 65535 else n mod 65535)))
  | Call ("work", _) -> error "work() takes one integer literal"
  | Call (("peek8" | "peek64" | "poke8" | "poke64" | "rdtsc"), _) ->
      error "builtin called with wrong arity"
  | Call (f, args) ->
      (match Hashtbl.find_opt fe.g.funcs f with
      | None -> error "unknown function %s" f
      | Some arity when arity <> List.length args ->
          error "%s expects %d arguments" f arity
      | Some _ -> ());
      List.concat_map (fun a -> compile_expr fe a @ [ push Isa.rax ]) args
      @ [ Call_l ("fn_" ^ f) ]
      @ if args = [] then [] else [ add_ri Isa.rsp (8 * List.length args) ]

let rec compile_stmt (fe : fenv) (s : stmt) : item list =
  match s with
  | Decl (name, init) ->
      let off =
        match Hashtbl.find_opt fe.locals name with
        | Some (Lvar off) -> off
        | _ -> error "internal: local %s not allocated" name
      in
      (match init with
      | Some e -> compile_expr fe e
      | None -> [ mov_ri Isa.rax 0 ])
      @ [ store Isa.rbp off Isa.rax ]
  | Decl_buf (_, _) -> []
  | Assign (name, e) -> (
      compile_expr fe e
      @
      match Hashtbl.find_opt fe.locals name with
      | Some (Lvar off) -> [ store Isa.rbp off Isa.rax ]
      | Some (Lbuf _) -> error "cannot assign to buffer %s" name
      | None -> (
          match Hashtbl.find_opt fe.g.gvars name with
          | Some lbl -> [ Lea_ip (Isa.rcx, lbl); store Isa.rcx 0 Isa.rax ]
          | None -> error "unknown variable %s" name))
  | Store_byte (b, idx, v) ->
      compile_expr fe b
      @ [ push Isa.rax ]
      @ compile_expr fe idx
      @ [ push Isa.rax ]
      @ compile_expr fe v
      @ [ pop Isa.rcx; pop Isa.rbx; add_rr Isa.rbx Isa.rcx;
          store8 Isa.rbx 0 Isa.rax ]
  | Expr e -> compile_expr fe e
  | Return None -> [ mov_ri Isa.rax 0; Jmp_l fe.epilogue ]
  | Return (Some e) -> compile_expr fe e @ [ Jmp_l fe.epilogue ]
  | If (cond, then_, else_) ->
      let lelse = fresh_label fe.g "else" and lend = fresh_label fe.g "endif" in
      compile_expr fe cond
      @ [ cmp_ri Isa.rax 0; Jcc_l (Isa.Eq, lelse) ]
      @ compile_stmts fe then_
      @ [ Jmp_l lend; Label lelse ]
      @ compile_stmts fe else_
      @ [ Label lend ]
  | While (cond, body) ->
      let ltop = fresh_label fe.g "while" and lend = fresh_label fe.g "wend" in
      fe.loop_labels <- (lend, ltop) :: fe.loop_labels;
      let items =
        [ Label ltop ]
        @ compile_expr fe cond
        @ [ cmp_ri Isa.rax 0; Jcc_l (Isa.Eq, lend) ]
        @ compile_stmts fe body
        @ [ Jmp_l ltop; Label lend ]
      in
      fe.loop_labels <- List.tl fe.loop_labels;
      items
  | For (init, cond, step, body) ->
      let ltop = fresh_label fe.g "for"
      and lstep = fresh_label fe.g "fstep"
      and lend = fresh_label fe.g "fend" in
      fe.loop_labels <- (lend, lstep) :: fe.loop_labels;
      let items =
        (match init with Some s -> compile_stmt fe s | None -> [])
        @ [ Label ltop ]
        @ (match cond with
          | Some c ->
              compile_expr fe c @ [ cmp_ri Isa.rax 0; Jcc_l (Isa.Eq, lend) ]
          | None -> [])
        @ compile_stmts fe body
        @ [ Label lstep ]
        @ (match step with Some s -> compile_stmt fe s | None -> [])
        @ [ Jmp_l ltop; Label lend ]
      in
      fe.loop_labels <- List.tl fe.loop_labels;
      items
  | Break -> (
      match fe.loop_labels with
      | (lend, _) :: _ -> [ Jmp_l lend ]
      | [] -> error "break outside loop")
  | Continue -> (
      match fe.loop_labels with
      | (_, lcont) :: _ -> [ Jmp_l lcont ]
      | [] -> error "continue outside loop")

and compile_stmts fe stmts = List.concat_map (compile_stmt fe) stmts

(* Frame-pointer preservation audit.  The provenance unwinder
   (lib/obs/provenance.ml) walks rbp frame chains, so generated code
   must keep rbp pointing at the current frame everywhere between the
   prologue and the epilogue.  The only sanctioned writers are the
   prologue pair [push rbp; mov rbp, rsp] and the epilogue pair
   [mov rsp, rbp; pop rbp]; any other write is a codegen bug that
   would silently break guest backtraces. *)
let writes_rbp (ins : Isa.instr) =
  let open Isa in
  match ins with
  | Pop r
  | Mov_rr (r, _)
  | Mov_ri (r, _)
  | Mov_ri32 (r, _)
  | Load (_, r, _, _)
  | Load8 (_, r, _, _)
  | Lea (r, _, _)
  | Alu_rr (_, r, _)
  | Alu_ri (_, r, _)
  | Shift (_, r, _)
  | Setcc (_, r)
  | Movq_rx (r, _)
  | Rdpkru r ->
      r = Isa.rbp
  | _ -> false

let audit_frame_pointer fname (items : item list) =
  let rec go = function
    | [] -> ()
    | Ins (Isa.Push p) :: Ins (Isa.Mov_rr (d, s)) :: rest
      when p = Isa.rbp && d = Isa.rbp && s = Isa.rsp ->
        go rest
    | Ins (Isa.Mov_rr (d, s)) :: Ins (Isa.Pop p) :: rest
      when d = Isa.rsp && s = Isa.rbp && p = Isa.rbp ->
        go rest
    | Ins ins :: rest ->
        if writes_rbp ins then
          error "internal: %s clobbers the frame pointer outside the \
                 prologue/epilogue"
            fname;
        go rest
    | _ :: rest -> go rest
  in
  go items

let compile_func (g : genv) (f : func) : item list =
  let fe =
    {
      g;
      fname = f.fname;
      locals = Hashtbl.create 16;
      frame = 0;
      epilogue = Printf.sprintf ".ret_%s" f.fname;
      loop_labels = [];
    }
  in
  (* Parameters: pushed left to right by the caller, so argument i of
     n sits at [rbp + 16 + 8*(n-1-i)]. *)
  let n = List.length f.params in
  List.iteri
    (fun idx p ->
      if Hashtbl.mem fe.locals p then error "duplicate parameter %s" p;
      Hashtbl.replace fe.locals p (Lvar (16 + (8 * (n - 1 - idx)))))
    f.params;
  scan_stmts fe f.body;
  let frame = (fe.frame + 15) land lnot 15 in
  let items =
    [ Label ("fn_" ^ f.fname); push Isa.rbp; mov_rr Isa.rbp Isa.rsp ]
    @ (if frame > 0 then [ sub_ri Isa.rsp frame ] else [])
    @ compile_stmts fe f.body
    @ [ mov_ri Isa.rax 0; Label fe.epilogue; mov_rr Isa.rsp Isa.rbp;
        pop Isa.rbp; ret ]
  in
  audit_frame_pointer f.fname items;
  items

let le64 (v : int64) =
  String.init 8 (fun j ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * j)) land 0xFF))

type syscall_site = {
  site_pc : int;  (** address of the [syscall] instruction *)
  site_nr : int option;  (** statically known number, [None] if computed *)
  site_fn : string;  (** enclosing function ([_start] for the shim) *)
}

(** Compile a program.  Returns the text blob (at [code_base], entry
    at the [start] label) and the data blob (at [data_base]).
    [sites], when given, receives every [syscall] instruction's
    resolved call-site record in emission order — the start shim's
    [exit_group] included. *)
let compile ?(code_base = 0x400000) ?(data_base = 0x600000)
    ?(sites : syscall_site list ref option) (src : string) :
    Sim_asm.Asm.blob * Sim_asm.Asm.blob =
  let prog = Parser.parse src in
  let g =
    {
      gvars = Hashtbl.create 8;
      gbufs = Hashtbl.create 8;
      funcs = Hashtbl.create 8;
      strings = [];
      next_str = 0;
      next_label = 0;
      sites = [];
    }
  in
  List.iter
    (fun gl ->
      match gl with
      | Gvar (name, _) -> Hashtbl.replace g.gvars name ("g_" ^ name)
      | Gbuf (name, _, _) -> Hashtbl.replace g.gbufs name ("g_" ^ name))
    prog.globals;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem g.funcs f.fname then
        error "duplicate function %s" f.fname;
      Hashtbl.replace g.funcs f.fname (List.length f.params))
    prog.funcs;
  if not (Hashtbl.mem g.funcs "main") then error "no main function";
  g.sites <-
    [ (".sc_exit", Some Sim_kernel.Defs.sys_exit_group, "_start") ];
  let text_items =
    [
      Label "start";
      Call_l "fn_main";
      mov_rr Isa.rdi Isa.rax;
      mov_ri Isa.rax Sim_kernel.Defs.sys_exit_group;
      Label ".sc_exit";
      syscall;
    ]
    @ List.concat_map (compile_func g) prog.funcs
  in
  let data_items =
    List.concat_map
      (fun gl ->
        match gl with
        | Gvar (name, init) -> [ Label ("g_" ^ name); Bytes (le64 init) ]
        | Gbuf (name, n, init) ->
            if String.length init > n then
              error "initialiser longer than buffer %s" name;
            [
              Label ("g_" ^ name);
              Bytes (init ^ String.make (n - String.length init) '\000');
              Align 8;
            ])
      prog.globals
    @ List.concat_map
        (fun (lbl, s) -> [ Label lbl; Bytes (s ^ "\000") ])
        (List.rev g.strings)
    @ [ Zeros 8 ]
  in
  let data = Sim_asm.Asm.assemble ~base:data_base data_items in
  let text =
    Sim_asm.Asm.assemble ~base:code_base ~env:data.Sim_asm.Asm.symbols
      text_items
  in
  (match sites with
  | None -> ()
  | Some out ->
      out :=
        List.rev_map
          (fun (lbl, nr, fn) ->
            { site_pc = Sim_asm.Asm.symbol text lbl; site_nr = nr;
              site_fn = fn })
          g.sites);
  (text, data)

(** Compile straight to a loadable image. *)
let compile_to_image ?(code_base = 0x400000) ?(data_base = 0x600000) src :
    Sim_kernel.Types.image =
  let text, data = compile ~code_base ~data_base src in
  Sim_kernel.Loader.image ~entry:(Sim_asm.Asm.symbol text "start") ~text ~data
    ()
