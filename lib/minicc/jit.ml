(** JIT execution of minicc programs — the simulator's analogue of
    [tcc -run].

    The driver image embeds the *obfuscated* compiled program as data
    (JIT output is computed at run time, never present verbatim in
    the binary), and at run time:

    + maps fresh pages for the JIT code and data,
    + decodes the payload into them byte by byte,
    + flips the code pages to r-x with [mprotect], and
    + jumps to the compiled program's entry point.

    A static binary rewriter that scanned the driver at load time has
    no way to see the payload's [syscall] instructions — the
    exhaustiveness experiment of the paper's Section V-A.

    The emission path is also a decoded-instruction-cache hazard: the
    payload is written with ordinary stores while the pages are RW
    (generation-silent), then flipped executable.  The [mprotect]
    bumps the pages' generations in [Mem], so a cache that had
    anything for those page numbers (e.g. from an earlier JIT round
    at the same addresses) revalidates before the first fetch of the
    fresh code.  The protection flip is also what the machine-wide
    tracer keys on: a page going non-executable to executable emits a
    [Jit_emit] event alongside the [Mprotect] — the W^X publish step
    is the only architecturally visible moment of JIT code creation. *)

open Sim_isa
open Sim_asm.Asm

let jit_code_base = 0xA0_0000
let jit_data_base = 0xB0_0000
let xor_key = 0x55

let obfuscate s = String.map (fun c -> Char.chr (Char.code c lxor xor_key)) s

(* Decode-copy [len] bytes from the [src] label to the absolute
   address [dst].  Labels get a unique [tag]. *)
let decode_copy ~tag ~src ~dst ~len =
  [
    Lea_ip (Isa.rsi, src);
    mov_ri Isa.rdi dst;
    mov_ri Isa.rbx len;
    Label ("copy_" ^ tag);
    load8 Isa.rcx Isa.rsi 0;
    i (Isa.Alu_ri (Isa.Xor, Isa.rcx, Int32.of_int xor_key));
    store8 Isa.rdi 0 Isa.rcx;
    add_ri Isa.rsi 1;
    add_ri Isa.rdi 1;
    sub_ri Isa.rbx 1;
    cmp_ri Isa.rbx 0;
    Jcc_l (Isa.Ne, "copy_" ^ tag);
  ]

(* The [~tag] labels the [syscall] instruction itself (zero bytes, so
   the emitted image is unchanged) — the flow-graph extractor reads
   the driver's call-site PCs from the image symbols. *)
let mmap_fixed_rw ~tag addr len =
  [
    mov_ri Isa.rdi addr;
    mov_ri Isa.rsi len;
    mov_ri Isa.rdx Sim_kernel.Defs.(prot_read lor prot_write);
    mov_ri Isa.r10 Sim_kernel.Defs.(map_fixed lor map_anonymous);
    mov_ri64 Isa.r8 (-1L);
    mov_ri Isa.r9 0;
    mov_ri Isa.rax Sim_kernel.Defs.sys_mmap;
    Label tag;
    syscall;
  ]

(* Driver call-site labels, in the order the driver issues them. *)
let driver_sites =
  [
    ("sc_banner", Sim_kernel.Defs.sys_write);
    ("sc_mmap_code", Sim_kernel.Defs.sys_mmap);
    ("sc_mmap_data", Sim_kernel.Defs.sys_mmap);
    ("sc_mprotect", Sim_kernel.Defs.sys_mprotect);
  ]

(** Build the [tcc -run]-style driver image for minicc source [src].
    The driver performs one static, non-JIT [write] syscall first, so
    every interposer has at least one statically visible site. *)
let driver_image (src : string) : Sim_kernel.Types.image =
  let text, data =
    Codegen.compile ~code_base:jit_code_base ~data_base:jit_data_base src
  in
  let entry = Sim_asm.Asm.symbol text "start" in
  let code_bytes = text.Sim_asm.Asm.bytes
  and data_bytes = data.Sim_asm.Asm.bytes in
  let banner = "jit: compiled, running\n" in
  let items =
    [
      Label "start";
      Jmp_l "go";
      Label "banner";
      Bytes banner;
      Label "payload_code";
      Bytes (obfuscate code_bytes);
      Label "payload_data";
      Bytes (obfuscate data_bytes);
      Label "go";
      (* write(1, banner, len): the statically visible syscall *)
      mov_ri Isa.rdi 1;
      Lea_ip (Isa.rsi, "banner");
      mov_ri Isa.rdx (String.length banner);
      mov_ri Isa.rax Sim_kernel.Defs.sys_write;
      Label "sc_banner";
      syscall;
    ]
    @ mmap_fixed_rw ~tag:"sc_mmap_code" jit_code_base
        (String.length code_bytes)
    @ mmap_fixed_rw ~tag:"sc_mmap_data" jit_data_base
        (max 8 (String.length data_bytes))
    @ decode_copy ~tag:"code" ~src:"payload_code" ~dst:jit_code_base
        ~len:(String.length code_bytes)
    @ decode_copy ~tag:"data" ~src:"payload_data" ~dst:jit_data_base
        ~len:(String.length data_bytes)
    @ [
        (* mprotect(code, len, R|X) — a well-behaved JIT *)
        mov_ri Isa.rdi jit_code_base;
        mov_ri Isa.rsi (String.length code_bytes);
        mov_ri Isa.rdx Sim_kernel.Defs.(prot_read lor prot_exec);
        mov_ri Isa.rax Sim_kernel.Defs.sys_mprotect;
        Label "sc_mprotect";
        syscall;
        (* enter the JITted program (its exit_group ends the process,
           as with tcc -run) *)
        mov_ri Isa.rbx entry;
        jmp_reg Isa.rbx;
      ]
  in
  Sim_kernel.Loader.image_of_items items

(** Convenience: run [src] under no interposer on a fresh kernel;
    returns (exit code, kernel). *)
let run ?(kernel = None) (src : string) =
  let k =
    match kernel with Some k -> k | None -> Sim_kernel.Kernel.create ()
  in
  let t = Sim_kernel.Kernel.spawn k (driver_image src) in
  let ok = Sim_kernel.Kernel.run_until_exit k in
  if not ok then failwith "jit program did not terminate";
  (t.Sim_kernel.Types.exit_code, k)
