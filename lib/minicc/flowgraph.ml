(** Static syscall-flow-graph extraction from minicc programs.

    The compiler already knows every interposition site it emits —
    {!Codegen.compile} labels each [syscall] instruction and reports
    its resolved PC, static number and enclosing function.  This
    module adds the *flow* between those sites: an abstract
    interpretation of the AST computes, for every program region, the
    set of syscall numbers that can run first ([en]), last ([ex]) and
    whether the region can execute without any syscall ([eps]), and
    emits a [Policy.graph] edge for every possible adjacent pair.

    The analysis is a deliberate over-approximation: loops are treated
    as zero-or-more iterations, both branch arms as possible,
    [break]/[continue] frontiers flow both back to the loop condition
    and out of the loop, and a computed syscall number becomes the
    [Policy.any_nr] wildcard.  Extra edges only cost detection
    coverage; a missing edge would be a false positive in enforcement,
    so we never drop one.

    For JIT programs ({!Jit.driver_image}) the payload is re-analyzed
    at the JIT load addresses and prefixed with the driver's own
    write/mmap/mmap/mprotect chain, whose call-site PCs come from the
    driver image's labels — the graph a static rewriter could never
    recover is exactly what the compiler hands us for free. *)

module Policy = Sim_policy.Policy
module IntSet = Policy.IntSet

(* ------------------------------------------------------------------ *)
(* Region summaries                                                    *)

type region = {
  en : IntSet.t;  (** numbers that can be the first syscall executed *)
  ex : IntSet.t;  (** numbers that can be the last one *)
  eps : bool;  (** the region can run with zero syscalls *)
  ret_ex : IntSet.t;  (** last-before-[return] frontier *)
  ret_eps : bool;  (** a [return] is reachable syscall-free *)
  jmp_ex : IntSet.t;  (** last-before-[break]/[continue] frontier *)
  jmp_eps : bool;  (** a jump is reachable syscall-free *)
}

let rnil =
  {
    en = IntSet.empty;
    ex = IntSet.empty;
    eps = true;
    ret_ex = IntSet.empty;
    ret_eps = false;
    jmp_ex = IntSet.empty;
    jmp_eps = false;
  }

(* One syscall with number [nr]. *)
let rsc nr = { rnil with en = IntSet.singleton nr; ex = IntSet.singleton nr; eps = false }

let cross g a b =
  IntSet.iter
    (fun x -> IntSet.iter (fun y -> Policy.add_edge g ~from_nr:x ~to_nr:y) b)
    a

let union_if c s = if c then s else IntSet.empty

(* [a] then [b]. *)
let seq g a b =
  cross g a.ex b.en;
  {
    en = IntSet.union a.en (union_if a.eps b.en);
    ex = IntSet.union b.ex (union_if b.eps a.ex);
    eps = a.eps && b.eps;
    ret_ex =
      IntSet.union a.ret_ex
        (IntSet.union b.ret_ex (union_if b.ret_eps a.ex));
    ret_eps = a.ret_eps || (a.eps && b.ret_eps);
    jmp_ex =
      IntSet.union a.jmp_ex
        (IntSet.union b.jmp_ex (union_if b.jmp_eps a.ex));
    jmp_eps = a.jmp_eps || (a.eps && b.jmp_eps);
  }

(* [a] or [b]. *)
let alt a b =
  {
    en = IntSet.union a.en b.en;
    ex = IntSet.union a.ex b.ex;
    eps = a.eps || b.eps;
    ret_ex = IntSet.union a.ret_ex b.ret_ex;
    ret_eps = a.ret_eps || b.ret_eps;
    jmp_ex = IntSet.union a.jmp_ex b.jmp_ex;
    jmp_eps = a.jmp_eps || b.jmp_eps;
  }

(* Zero or more repetitions of [a]. *)
let star g a =
  cross g a.ex a.en;
  {
    a with
    eps = true;
    ret_ex = IntSet.union a.ret_ex (union_if a.ret_eps a.ex);
    jmp_ex = IntSet.union a.jmp_ex (union_if a.jmp_eps a.ex);
  }

(* A loop [cond (body step cond)*]; break/continue frontiers flow back
   to the condition (continue) and out of the loop (break) — both
   directions, conservatively. *)
let loop g ~cond ~body ~step =
  let r = seq g (star g (seq g (seq g cond body) step)) cond in
  cross g r.jmp_ex cond.en;
  {
    en = r.en;
    ex = IntSet.union r.ex r.jmp_ex;
    eps = r.eps || r.jmp_eps;
    ret_ex = r.ret_ex;
    ret_eps = r.ret_eps;
    jmp_ex = IntSet.empty;
    jmp_eps = false;
  }

(* ------------------------------------------------------------------ *)
(* AST walk                                                            *)

(* Static syscall number of a [syscall(nr, ...)] occurrence. *)
let static_nr (args : Ast.expr list) =
  match args with Ast.Num v :: _ -> Int64.to_int v | _ -> Policy.any_nr

let rec expr_region g summaries (e : Ast.expr) : region =
  let expr = expr_region g summaries in
  match e with
  | Ast.Num _ | Ast.Str _ | Ast.Var _ -> rnil
  | Ast.Index (a, b) -> seq g (expr a) (expr b)
  | Ast.Un (_, a) -> expr a
  | Ast.Bin ((Ast.LAnd | Ast.LOr), a, b) ->
      (* the right operand may be skipped *)
      seq g (expr a) (alt (expr b) rnil)
  | Ast.Bin (_, a, b) -> seq g (expr a) (expr b)
  | Ast.Call ("syscall", args) ->
      let r = List.fold_left (fun acc a -> seq g acc (expr a)) rnil args in
      seq g r (rsc (static_nr args))
  | Ast.Call (f, args) -> (
      let r = List.fold_left (fun acc a -> seq g acc (expr a)) rnil args in
      match Hashtbl.find_opt summaries f with
      | Some callee -> seq g r callee
      | None -> r (* syscall-free builtin (peek64, poke64, ...) *))

and stmt_region g summaries (s : Ast.stmt) : region =
  let expr = expr_region g summaries in
  let opt_expr = function Some e -> expr e | None -> rnil in
  let opt_stmt = function
    | Some s -> stmt_region g summaries s
    | None -> rnil
  in
  match s with
  | Ast.Decl (_, init) -> opt_expr init
  | Ast.Decl_buf _ -> rnil
  | Ast.Assign (_, e) | Ast.Expr e -> expr e
  | Ast.Store_byte (a, b, c) -> seq g (seq g (expr a) (expr b)) (expr c)
  | Ast.If (c, t, e) ->
      seq g (expr c)
        (alt (body_region g summaries t) (body_region g summaries e))
  | Ast.While (c, b) ->
      loop g ~cond:(expr c) ~body:(body_region g summaries b) ~step:rnil
  | Ast.For (init, c, step, b) ->
      seq g (opt_stmt init)
        (loop g ~cond:(opt_expr c) ~body:(body_region g summaries b)
           ~step:(opt_stmt step))
  | Ast.Return e ->
      let r = opt_expr e in
      {
        rnil with
        en = r.en;
        eps = false;
        ret_ex = r.ex;
        ret_eps = r.eps;
      }
  | Ast.Break | Ast.Continue -> { rnil with eps = false; jmp_eps = true }

and body_region g summaries (stmts : Ast.stmt list) : region =
  List.fold_left (fun acc s -> seq g acc (stmt_region g summaries s)) rnil
    stmts

(* Fold abnormal exits into a callee-effect region: a [return] is just
   the function's exit, and a stray break/continue (codegen rejects
   none, it compiles them only inside loops) is treated the same. *)
let call_effect (b : region) : region =
  {
    rnil with
    en = b.en;
    ex = IntSet.union b.ex (IntSet.union b.ret_ex b.jmp_ex);
    eps = b.eps || b.ret_eps || b.jmp_eps;
  }

let region_equal a b =
  IntSet.equal a.en b.en && IntSet.equal a.ex b.ex && a.eps = b.eps

(* Iterate per-function call-effect summaries to their least fixpoint
   (recursion starts from the empty effect), emitting graph edges along
   the way — emission is monotone in the summaries, so the converged
   pass emits the complete edge set. *)
let function_summaries g (prog : Ast.program) :
    (string, region) Hashtbl.t =
  let summaries = Hashtbl.create 8 in
  let bottom = { rnil with eps = false } in
  List.iter
    (fun (f : Ast.func) -> Hashtbl.replace summaries f.fname bottom)
    prog.funcs;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > 64 then failwith "flowgraph: summary fixpoint diverged";
    List.iter
      (fun (f : Ast.func) ->
        let eff = call_effect (body_region g summaries f.body) in
        if not (region_equal eff (Hashtbl.find summaries f.fname)) then begin
          Hashtbl.replace summaries f.fname eff;
          changed := true
        end)
      prog.funcs
  done;
  summaries

(* ------------------------------------------------------------------ *)
(* Whole-program extraction                                            *)

(* Analyze [src]'s AST into [g] and return the whole-program region:
   main's body followed by the start shim's [exit_group]. *)
let analyze g (src : string) : region =
  let prog = Parser.parse src in
  let summaries = function_summaries g prog in
  let main =
    match Hashtbl.find_opt summaries "main" with
    | Some r -> r
    | None -> Ast.error "no main function"
  in
  seq g main (rsc Sim_kernel.Defs.sys_exit_group)

(* Every syscall number with a node in [g]. *)
let graph_nrs g =
  Hashtbl.fold (fun nr _ acc -> nr :: acc) g.Policy.nodes []

let add_sites g (sites : Codegen.syscall_site list) =
  List.iter
    (fun (s : Codegen.syscall_site) ->
      let nr =
        match s.Codegen.site_nr with Some nr -> nr | None -> Policy.any_nr
      in
      Policy.add_node g ~nr ~sites:[ s.Codegen.site_pc ] ())
    sites

(** Extract the flow graph of a statically loaded minicc program:
    nodes carry the call-site PCs codegen resolved at [code_base],
    edges come from the AST analysis, and the whole text lives in
    compartment pkey 0. *)
let graph_of ?(name = "minicc") ?code_base ?data_base (src : string) :
    Policy.graph =
  let g = Policy.create_graph ~name () in
  let sites = ref [] in
  let (_ : Sim_asm.Asm.blob * Sim_asm.Asm.blob) =
    Codegen.compile ?code_base ?data_base ~sites src
  in
  add_sites g !sites;
  let p = analyze g src in
  IntSet.iter (fun nr -> Policy.add_edge g ~from_nr:Policy.start_nr ~to_nr:nr) p.en;
  Policy.add_compartment g ~pkey:0 ~nrs:(graph_nrs g);
  g

(** Extract the flow graph of [Jit.driver_image src]: the driver's
    own banner-write/mmap/mmap/mprotect chain (sites from the driver
    image's labels) followed by the payload analyzed at the JIT load
    addresses. *)
let graph_of_jit ?(name = "minicc-jit") (src : string) : Policy.graph =
  let g = Policy.create_graph ~name ~jit:true () in
  let sites = ref [] in
  let (_ : Sim_asm.Asm.blob * Sim_asm.Asm.blob) =
    Codegen.compile ~code_base:Jit.jit_code_base ~data_base:Jit.jit_data_base
      ~sites src
  in
  add_sites g !sites;
  let img = Jit.driver_image src in
  let pc lbl = List.assoc lbl img.Sim_kernel.Types.img_symbols in
  List.iter
    (fun (lbl, nr) -> Policy.add_node g ~nr ~sites:[ pc lbl ] ())
    Jit.driver_sites;
  (* the driver chain runs in order, then jumps into the payload *)
  let chain = List.map snd Jit.driver_sites in
  let rec link prev = function
    | [] -> prev
    | nr :: rest ->
        Policy.add_edge g ~from_nr:prev ~to_nr:nr;
        link nr rest
  in
  let last_driver = link Policy.start_nr chain in
  let p = analyze g src in
  IntSet.iter
    (fun nr -> Policy.add_edge g ~from_nr:last_driver ~to_nr:nr)
    p.en;
  Policy.add_compartment g ~pkey:0 ~nrs:(graph_nrs g);
  g

(** Front end used by the CLI: extract from a source file, [jit]
    selecting the loader. *)
let extract ?name ~jit (src : string) : Policy.graph =
  if jit then graph_of_jit ?name src else graph_of ?name src
