(** The benchmark executable: regenerates every table and figure of
    the paper's evaluation (Section V) and, separately, runs Bechamel
    microbenchmarks of the simulator's hot paths (one [Test.make] per
    paper table/figure, exercising that experiment's kernel).

    Usage:
      dune exec bench/main.exe                 (everything)
      dune exec bench/main.exe -- --only tableII --only fig4
      dune exec bench/main.exe -- --list
      dune exec bench/main.exe -- --fast       (smaller fig5 grid)
      dune exec bench/main.exe -- --json FILE  (host-side report; default
                                                bench-results.json)
      dune exec bench/main.exe -- --trace FILE (re-run the Table II
                                                configurations with the
                                                machine-wide tracer on and
                                                write one merged Chrome
                                                trace JSON, one process
                                                group per mechanism)
      dune exec bench/main.exe -- --snapshot auto
                                               (resolve the latest committed
                                                BENCH_<n>.json, write the
                                                regression snapshot and fail
                                                if the lazypoline fast path
                                                got >10% slower; an explicit
                                                path works too)
      dune exec bench/main.exe -- --chaos-off-check auto
                                               (fail unless a run with a
                                                zero-rate chaos engine
                                                attached is cycle-identical
                                                to the plain run and to the
                                                committed snapshot)
      dune exec bench/main.exe -- --no-engine-sweep
                                               (skip the blocks-on vs.
                                                blocks-off Table II engine
                                                throughput sweep)
      dune exec bench/main.exe -- --no-record-sweep
                                               (skip the audit-recorder
                                                record-overhead sweep and
                                                its observation-only gate)
      dune exec bench/main.exe -- --no-sites-sweep
                                               (skip the per-call-site
                                                provenance sweep and its
                                                unwind-success / path-purity
                                                gates)

    Besides the paper numbers (simulated cycles — independent of the
    host), every experiment reports host-side simulation throughput:
    wall-clock time, simulated instructions retired, insns/sec, and
    the decoded-instruction-cache hit/miss/invalidation counters.
    The per-experiment reports are written as JSON. *)

(* The bench JSON schema version, in one place: the emitter and every
   gate that keys on the schema share this constant, so bumping the
   version is a single edit. *)
let schema_version = "lazypoline-sim-bench/7"

(* --- Host-side throughput reporting -------------------------------- *)

type host_report = {
  hr_name : string;
  hr_wall_s : float;
  hr_insns : int;  (** simulated instructions retired *)
  hr_hits : int;
  hr_misses : int;
  hr_invalidations : int;
  hr_fallbacks : int;
}

let reports : host_report list ref = ref []

(* Run [f], attributing the global retired-instruction and icache
   counter deltas (all simulated CPUs) to experiment [name]. *)
let timed name f =
  let h0, m0, i0, f0 = Sim_cpu.Icache.totals () in
  let r0 = !Sim_cpu.Cpu.retired in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  let h1, m1, i1, f1 = Sim_cpu.Icache.totals () in
  let rep =
    {
      hr_name = name;
      hr_wall_s = wall;
      hr_insns = !Sim_cpu.Cpu.retired - r0;
      hr_hits = h1 - h0;
      hr_misses = m1 - m0;
      hr_invalidations = i1 - i0;
      hr_fallbacks = f1 - f0;
    }
  in
  reports := rep :: !reports;
  Printf.printf
    "[host] %-16s %7.2fs wall  %11d insns  %7.2f M insn/s  icache \
     %d/%d/%d/%d (hit/miss/inval/fallback)\n%!"
    name wall rep.hr_insns
    (if wall > 0.0 then float_of_int rep.hr_insns /. wall /. 1e6 else 0.0)
    rep.hr_hits rep.hr_misses rep.hr_invalidations rep.hr_fallbacks

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* --- Per-mechanism simulated-cycle rows (always emitted) ----------- *)

(* One short metrics-instrumented microbenchmark run per mechanism:
   simulated cycles per iteration plus a full snapshot of the metrics
   registry, so the JSON report carries the dispatch-path split,
   rewrite counts and icache counters for every mechanism — the
   machine-readable companion of Table II.  See DESIGN.md §9 for the
   schema. *)
type mech_row = { mr_name : string; mr_cycles : float; mr_metrics : string }

let mechanism_rows () =
  let open Workloads.Microbench_prog in
  let configs =
    [
      Native; Native_sud_allow; Zpoline; Lazypoline_full; Lazypoline_noxstate;
      Lazypoline_nosud; Lazypoline_protected; Sud; Seccomp_user; Seccomp_bpf;
      Ptrace;
    ]
  in
  List.map
    (fun config ->
      let m = Sim_kernel.Kmetrics.create () in
      let cycles = run ~iters:2_000 ~metrics:m config in
      {
        mr_name = config_name config;
        mr_cycles = cycles;
        mr_metrics = Sim_kernel.Kmetrics.to_json m;
      })
    configs

(* --- Engine throughput rows (Table II sweep, blocks on vs. off) ---- *)

(* Host-side throughput of the threaded-code block engine: every
   Table II mechanism run twice over the getpid microbenchmark — once
   through the block engine, once forced onto the per-instruction
   interpreter — at an iteration count large enough that steady-state
   execution dominates image setup.  The headline is the aggregate
   speedup (total retired instructions / total wall seconds, on vs.
   off); the gate for this number lives in CI, not here, because host
   throughput is machine-dependent. *)

type engine_row = {
  er_name : string;
  er_on_insns : int;
  er_on_wall : float;
  er_off_insns : int;
  er_off_wall : float;
}

let engine_iters = 200_000
let engine_nr = 39 (* getpid: the Table II syscall *)

let engine_rows () =
  let open Workloads.Microbench_prog in
  let configs =
    [
      Native; Native_sud_allow; Zpoline; Lazypoline_full; Lazypoline_noxstate;
      Lazypoline_nosud; Lazypoline_protected; Sud; Seccomp_user; Seccomp_bpf;
      Ptrace;
    ]
  in
  let measure blocks config =
    let r0 = !Sim_cpu.Cpu.retired in
    let t0 = Unix.gettimeofday () in
    ignore (run ~iters:engine_iters ~nr:engine_nr ~blocks config);
    (Unix.gettimeofday () -. t0, !Sim_cpu.Cpu.retired - r0)
  in
  List.map
    (fun config ->
      let on_wall, on_insns = measure true config in
      let off_wall, off_insns = measure false config in
      {
        er_name = config_name config;
        er_on_insns = on_insns;
        er_on_wall = on_wall;
        er_off_insns = off_insns;
        er_off_wall = off_wall;
      })
    configs

let ips insns wall = if wall > 0.0 then float_of_int insns /. wall else 0.0

(* --- Record-overhead sweep (simtrace debug / record, DESIGN.md §13) - *)

(* The cost of recording a time-travel audit log, per mechanism: the
   getpid microbenchmark run twice — audit recorder detached, then
   attached — reporting simulated cycles per iteration and host
   wall-clock for both.  The recorder is observation-only by contract
   (DESIGN.md §9), so the simulated-cycle delta must be *exactly* zero
   and the run fails otherwise; the honest price of recording is the
   host wall-clock ratio, the number an rr-style user actually pays. *)

type record_row = {
  rr_name : string;
  rr_cycles_off : float;
  rr_cycles_on : float;
  rr_wall_off : float;
  rr_wall_on : float;
  rr_events : int;  (** audit entries recorded (app + mechanism-private) *)
}

let record_iters = 20_000

let record_rows () =
  let open Workloads.Microbench_prog in
  (* the six Table II interposition mechanisms *)
  let configs =
    [ Native; Sud; Zpoline; Lazypoline_full; Seccomp_user; Ptrace ]
  in
  List.map
    (fun config ->
      let t0 = Unix.gettimeofday () in
      let c_off = run ~iters:record_iters config in
      let w_off = Unix.gettimeofday () -. t0 in
      let a = Sim_audit.Audit.create ~checkpoint_every:64 () in
      let t1 = Unix.gettimeofday () in
      let c_on = run ~iters:record_iters ~auditor:a config in
      let w_on = Unix.gettimeofday () -. t1 in
      {
        rr_name = config_name config;
        rr_cycles_off = c_off;
        rr_cycles_on = c_on;
        rr_wall_off = w_off;
        rr_wall_on = w_on;
        rr_events = List.length (Sim_audit.Audit.entries a);
      })
    configs

let wall_ratio r =
  if r.rr_wall_off > 0.0 then r.rr_wall_on /. r.rr_wall_off else 0.0

(* --- Request-flow span sweep (simtrace spans, DESIGN.md §14) ------- *)

(* The wrk macrobench run under each of the six mechanisms with the
   span recorder attached: per-phase cycle attribution (app /
   interposer / kernel / sched / blocked) over the whole run, plus
   request-latency tail percentiles.  Gating: the phase rows must sum
   exactly to the run's total simulated cycles with the [other]
   residue below 1%, and no request may be dropped at the recorder's
   in-flight cap — silent attribution gaps would make the trajectory
   meaningless. *)

type span_row = {
  sr_mech : string;
  sr_totals : Sim_obs.Obs.totals;
  sr_p50 : float;
  sr_p90 : float;
  sr_p99 : float;
  sr_p999 : float;
  sr_max : float;
  sr_issued : int;
  sr_completed : int;
  sr_overflow : int;
  sr_evictions : int;
  sr_wall : float;
}

let spans_flavour = Workloads.Webserver.Nginx_like
let spans_size_kb = 8

let spans_rows ~conns ~requests () =
  let module D = Harness.Divergence in
  let module Obs = Sim_obs.Obs in
  let workload =
    D.Wrk { flavour = spans_flavour; size_kb = spans_size_kb; conns; requests }
  in
  List.map
    (fun mech ->
      let o = Obs.create ~ncpus:1 () in
      let t0 = Unix.gettimeofday () in
      let _a, k, _t = D.run_audited ~obs:o mech workload in
      let wall = Unix.gettimeofday () -. t0 in
      let clks =
        Array.map
          (fun (c : Sim_kernel.Types.cpu_slot) -> c.Sim_kernel.Types.clk)
          k.Sim_kernel.Types.cpus
      in
      let tt = Obs.totals o ~clks in
      let h = Obs.latency_hist o in
      let pc p = Sim_stats.Stats.Log_hist.percentile h p in
      let row =
        {
          sr_mech = D.mech_name mech;
          sr_totals = tt;
          sr_p50 = pc 50.0;
          sr_p90 = pc 90.0;
          sr_p99 = pc 99.0;
          sr_p999 = pc 99.9;
          sr_max = Sim_stats.Stats.Log_hist.max_value h;
          sr_issued = Obs.issued o;
          sr_completed = Obs.completed_count o;
          sr_overflow = Obs.overflow o;
          sr_evictions = Obs.evictions o;
          sr_wall = wall;
        }
      in
      Printf.printf
        "[host] spans %-12s total %12Ld cyc  app %4.1f%% interp %4.1f%% \
         kernel %4.1f%% sched %4.1f%% blocked %4.1f%%  p99 %.0f  (%d/%d \
         requests, %.1fs)\n\
         %!"
        row.sr_mech tt.Obs.t_total
        (100.0 *. Int64.to_float tt.Obs.t_app /. Int64.to_float tt.Obs.t_total)
        (100.0
        *. Int64.to_float tt.Obs.t_interp
        /. Int64.to_float tt.Obs.t_total)
        (100.0
        *. Int64.to_float tt.Obs.t_kernel
        /. Int64.to_float tt.Obs.t_total)
        (100.0
        *. Int64.to_float tt.Obs.t_sched
        /. Int64.to_float tt.Obs.t_total)
        (100.0
        *. Int64.to_float tt.Obs.t_blocked
        /. Int64.to_float tt.Obs.t_total)
        row.sr_p99 row.sr_completed row.sr_issued wall;
      (* The accounting identity gates. *)
      let charged =
        List.fold_left
          (fun acc (_, c) -> Int64.add acc c)
          0L (Obs.totals_rows tt)
      in
      if charged <> tt.Obs.t_total then begin
        Printf.eprintf
          "[host] FAIL: spans %s: phase rows sum to %Ld cycles, run total is \
           %Ld — unattributed time\n\
           %!"
          row.sr_mech charged tt.Obs.t_total;
        exit 1
      end;
      if
        Int64.to_float tt.Obs.t_other
        > 0.01 *. Int64.to_float tt.Obs.t_total
      then begin
        Printf.eprintf
          "[host] FAIL: spans %s: 'other' bucket %Ld exceeds 1%% of %Ld\n%!"
          row.sr_mech tt.Obs.t_other tt.Obs.t_total;
        exit 1
      end;
      if row.sr_overflow > 0 then begin
        Printf.eprintf
          "[host] FAIL: spans %s: %d request(s) dropped at the in-flight cap\n\
           %!"
          row.sr_mech row.sr_overflow;
        exit 1
      end;
      if row.sr_completed <> requests then begin
        Printf.eprintf
          "[host] FAIL: spans %s: %d of %d requests completed\n%!" row.sr_mech
          row.sr_completed requests;
        exit 1
      end;
      row)
    Harness.Divergence.all_mechs

(* The span recorder must be free when detached and observation-only
   when attached: a wrk run with the recorder on has to produce a
   bit-identical audit log (streams, checkpoint hashes, final state
   hash) and the exact same simulated cycle count as the same run
   without it, under every mechanism. *)
let check_spans_off () =
  let module D = Harness.Divergence in
  let workload =
    D.Wrk { flavour = spans_flavour; size_kb = 4; conns = 8; requests = 300 }
  in
  List.iter
    (fun mech ->
      let run obs =
        let a, k, _ = D.run_audited ?obs mech workload in
        let h = Sim_kernel.Kernel.audit_final_hash k a in
        (D.log_string ~final_hash:h a, Sim_kernel.Types.global_time k, h)
      in
      let o = Sim_obs.Obs.create ~ncpus:1 () in
      let log_on, cyc_on, h_on = run (Some o) in
      let log_off, cyc_off, h_off = run None in
      if log_on = log_off && cyc_on = cyc_off then
        Printf.printf
          "[host] spans-off %-12s OK: %Ld cycles, state hash %Lx, identical \
           with the recorder attached\n\
           %!"
          (D.mech_name mech) cyc_on h_on
      else begin
        Printf.eprintf
          "[host] FAIL: span recorder perturbed %s: cycles %Ld (on) vs %Ld \
           (off), hash %Lx vs %Lx, audit logs %s — the recorder is \
           observation-only by contract\n\
           %!"
          (D.mech_name mech) cyc_on cyc_off h_on h_off
          (if log_on = log_off then "equal" else "differ");
        exit 1
      end)
    Harness.Divergence.all_mechs

(* --- Per-call-site provenance sweep (simtrace sites, DESIGN.md §15) - *)

(* The six mechanisms run over a call-graph-rich minicc workload with
   the provenance recorder attached: a bounded rbp-chain unwind at
   every audited syscall keys a per-site ledger of dispatch-path mix
   and rewrite provenance.  Gating: (a) at least 99% of audited
   syscalls must unwind to one or more frames (the only sanctioned
   failure is the start shim's exit, which runs with rbp = 0); (b) the
   ledger must show each mechanism's dispatch signature per site — in
   particular every lazily-rewritten lazypoline site must be fast-path
   pure after its one SIGSYS (the paper's per-site specialization
   claim, checked at site granularity rather than machine-wide). *)

type sites_row = { tr_mech : string; tr_prov : Sim_obs.Provenance.t }

(* Two leaf call sites reached through a two-deep call chain, hot
   enough that the one unresolvable exit syscall stays under 1%. *)
let sites_src =
  "long leaf_pid() { return syscall(39); }\n\
   long leaf_write(s, n) { return syscall(1, 1, s, n); }\n\
   long middle(i) { long p = leaf_pid(); leaf_write(\"tick\\n\", 5); return \
   p; }\n\
   long main() { long i = 0; while (i < 200) { middle(i); i = i + 1; } \
   return 0; }\n"

let sites_rows () =
  let module D = Harness.Divergence in
  let module P = Sim_obs.Provenance in
  let workload = D.Prog { src = sites_src; jit = false } in
  List.map
    (fun mech ->
      let p = P.create () in
      let _a, _k, _t = D.run_audited ~prov:p mech workload in
      let name = D.mech_name mech in
      let rate = P.unwind_success_rate p in
      Printf.printf
        "[host] sites %-12s %3d site(s), %3d rewritten, unwind %d/%d \
         (%.1f%%)\n\
         %!"
        name (P.distinct_sites p) (P.rewrite_count p) (P.unwind_resolved p)
        (P.unwind_attempts p) (100.0 *. rate);
      if rate < 0.99 then begin
        Printf.eprintf
          "[host] FAIL: sites %s: unwind success %.2f%% below the 99%% gate \
           (%d/%d)\n\
           %!"
          name (100.0 *. rate) (P.unwind_resolved p) (P.unwind_attempts p);
        exit 1
      end;
      let pure idx (s : P.site) =
        Array.for_all (( = ) 0)
          (Array.mapi (fun i n -> if i = idx then 0 else n) s.P.s_paths)
      in
      let check_pure idx =
        List.iter
          (fun (s : P.site) ->
            if not (pure idx s) then begin
              Printf.eprintf
                "[host] FAIL: sites %s: site 0x%x nr=%d not %s-pure\n%!" name
                s.P.s_pc s.P.s_nr P.path_names.(idx);
              exit 1
            end)
          (P.sites_sorted p)
      in
      (match mech with
      | D.Raw -> check_pure 4 (* direct *)
      | D.Sud -> check_pure 0 (* sud_sigsys *)
      | D.Zpoline -> check_pure 1 (* the load-time sweep leaves no slow path *)
      | D.Seccomp -> check_pure 2
      | D.Ptrace -> check_pure 3
      | D.Lazypoline_m ->
          (* Every rewritten site: exactly one SIGSYS-mediated dispatch
             (the one that triggered the rewrite), everything after it
             on the fast path — and the hot sites must show the fast
             path actually taken. *)
          let saw_fast = ref false in
          List.iter
            (fun (s : P.site) ->
              match P.rewrite_of p s.P.s_pc with
              | None -> ()
              | Some _ ->
                  if s.P.s_paths.(1) > 0 then saw_fast := true;
                  if
                    s.P.s_paths.(0) > 1
                    || s.P.s_paths.(2) > 0
                    || s.P.s_paths.(3) > 0
                    || s.P.s_paths.(4) > 0
                  then begin
                    Printf.eprintf
                      "[host] FAIL: sites lazypoline: rewritten site 0x%x \
                       nr=%d not fast-path pure after its rewrite \
                       (sud=%d fast=%d seccomp=%d ptrace=%d direct=%d)\n\
                       %!"
                      s.P.s_pc s.P.s_nr s.P.s_paths.(0) s.P.s_paths.(1)
                      s.P.s_paths.(2) s.P.s_paths.(3) s.P.s_paths.(4);
                    exit 1
                  end)
            (P.sites_sorted p);
          if not !saw_fast then begin
            Printf.eprintf
              "[host] FAIL: sites lazypoline: no rewritten site ever took \
               the fast path\n\
               %!";
            exit 1
          end);
      { tr_mech = name; tr_prov = p })
    D.all_mechs

(* --- Syscall-flow-integrity sweep (simtrace policy, DESIGN.md §16) - *)

(* The Table II microbench under the six mechanisms with the policy
   engine attached in each of its modes.  The flow graph is learned
   from a raw-dispatch run of the same loop, so the recorded call-site
   PCs are the true application PCs that every interposer's site
   recovery reproduces.  Three gates, checked per row as it is
   produced: (a) report mode is observation-only — simulated cycles
   per iteration must be bit-identical to the policy-off run; (b) the
   clean loop must produce zero violations and zero denials in every
   mode (no false positives); (c) the lazypoline enforce-mode fast
   path must stay within [policy_budget] of policy-off — the paper's
   "without compromise" claim extended to flow-integrity checking. *)

type policy_row = {
  yr_mech : string;
  yr_cycles_off : float;
  yr_cycles_report : float;
  yr_cycles_enforce : float;
  yr_checks : int;  (** dispatches checked by the enforcing engine *)
}

let policy_iters = 20_000
let policy_nr = 500
let policy_budget = 0.15

let policy_enforce_delta r =
  if r.yr_cycles_off > 0.0 then
    (r.yr_cycles_enforce -. r.yr_cycles_off) /. r.yr_cycles_off
  else 0.0

let policy_rows () =
  let open Workloads.Microbench_prog in
  let module P = Sim_policy.Policy in
  let module D = Harness.Divergence in
  let graph =
    Harness.Sfi.learn (D.Micro { iters = policy_iters; nr = policy_nr })
  in
  let configs =
    [ Native; Sud; Zpoline; Lazypoline_full; Seccomp_user; Ptrace ]
  in
  List.map
    (fun config ->
      let name = config_name config in
      let off = run ~iters:policy_iters ~nr:policy_nr config in
      let rp = P.create ~mode:P.Report graph in
      let report = run ~iters:policy_iters ~nr:policy_nr ~policy:rp config in
      let ep = P.create ~mode:P.Deny graph in
      let enforce = run ~iters:policy_iters ~nr:policy_nr ~policy:ep config in
      let row =
        {
          yr_mech = name;
          yr_cycles_off = off;
          yr_cycles_report = report;
          yr_cycles_enforce = enforce;
          yr_checks = ep.P.checks;
        }
      in
      Printf.printf
        "[host] policy %-16s %8.2f cyc/iter off, %8.2f report, %8.2f \
         enforce (%+.1f%%)  %d checks\n\
         %!"
        name off report enforce
        (100.0 *. policy_enforce_delta row)
        ep.P.checks;
      if report <> off then begin
        Printf.eprintf
          "[host] FAIL: policy %s: report mode perturbed the run: %.4f \
           cycles/iter without the engine, %.4f with — report mode is \
           observation-only by contract\n\
           %!"
          name off report;
        exit 1
      end;
      if
        P.violation_count rp > 0
        || P.violation_count ep > 0
        || ep.P.denied > 0
      then begin
        Printf.eprintf
          "[host] FAIL: policy %s: false positive on the clean loop \
           (report %d, enforce %d violations, %d denied)\n\
           %!"
          name (P.violation_count rp) (P.violation_count ep) ep.P.denied;
        exit 1
      end;
      row)
    configs

let check_policy_rows rows =
  List.iter
    (fun r ->
      if r.yr_mech = "lazypoline" then begin
        let delta = policy_enforce_delta r in
        if delta > policy_budget then begin
          Printf.eprintf
            "[host] FAIL: policy lazypoline: enforce-mode fast-path \
             overhead %.1f%% exceeds the %.0f%% budget (%.2f -> %.2f \
             cycles/iter)\n\
             %!"
            (100.0 *. delta)
            (100.0 *. policy_budget)
            r.yr_cycles_off r.yr_cycles_enforce;
          exit 1
        end
      end)
    rows

let check_record_rows rows =
  List.iter
    (fun r ->
      Printf.printf
        "[host] record %-16s %8.2f cyc/iter off, %8.2f on  wall %6.2fs -> \
         %6.2fs (%.2fx)  %d events\n\
         %!"
        r.rr_name r.rr_cycles_off r.rr_cycles_on r.rr_wall_off r.rr_wall_on
        (wall_ratio r) r.rr_events;
      if r.rr_cycles_on <> r.rr_cycles_off then begin
        Printf.eprintf
          "[host] FAIL: audit recorder perturbed %s: %.4f cycles/iter \
           without it, %.4f with — the recorder is observation-only by \
           contract\n\
           %!"
          r.rr_name r.rr_cycles_off r.rr_cycles_on;
        exit 1
      end)
    rows

let engine_aggregate rows =
  let sum f g =
    List.fold_left (fun (a, b) r -> (a + f r, b +. g r)) (0, 0.0) rows
  in
  let on_i, on_w = sum (fun r -> r.er_on_insns) (fun r -> r.er_on_wall) in
  let off_i, off_w = sum (fun r -> r.er_off_insns) (fun r -> r.er_off_wall) in
  (ips on_i on_w, ips off_i off_w)

let emit_json path mechs engine record spans sites policy =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema\": \"%s\",\n  \"experiments\": [" schema_version;
  List.iteri
    (fun idx r ->
      let ips =
        if r.hr_wall_s > 0.0 then float_of_int r.hr_insns /. r.hr_wall_s
        else 0.0
      in
      out "%s\n    { \"name\": \"%s\", \"wall_seconds\": %.6f,\n"
        (if idx = 0 then "" else ",")
        (json_escape r.hr_name) r.hr_wall_s;
      out "      \"simulated_instructions\": %d, \"insns_per_second\": %.1f,\n"
        r.hr_insns ips;
      out
        "      \"icache\": { \"hits\": %d, \"misses\": %d, \
         \"invalidations\": %d, \"fallbacks\": %d } }"
        r.hr_hits r.hr_misses r.hr_invalidations r.hr_fallbacks)
    (List.rev !reports);
  out "\n  ],\n  \"mechanisms\": [";
  List.iteri
    (fun idx m ->
      out "%s\n    { \"name\": \"%s\", \"cycles_per_iteration\": %.2f,\n"
        (if idx = 0 then "" else ",")
        (json_escape m.mr_name) m.mr_cycles;
      out "      \"metrics\": %s }" m.mr_metrics)
    mechs;
  out "\n  ]";
  (match engine with
  | [] -> ()
  | rows ->
      let on_ips, off_ips = engine_aggregate rows in
      out ",\n  \"engine\": {\n";
      out "    \"iters\": %d, \"nr\": %d,\n    \"rows\": [" engine_iters
        engine_nr;
      List.iteri
        (fun idx r ->
          let on = ips r.er_on_insns r.er_on_wall in
          let off = ips r.er_off_insns r.er_off_wall in
          out
            "%s\n      { \"name\": \"%s\", \"on_insns_per_second\": %.1f, \
             \"off_insns_per_second\": %.1f,\n\
            \        \"on_insns\": %d, \"off_insns\": %d, \"speedup\": %.2f }"
            (if idx = 0 then "" else ",")
            (json_escape r.er_name) on off r.er_on_insns r.er_off_insns
            (if off > 0.0 then on /. off else 0.0))
        rows;
      out "\n    ],\n";
      out
        "    \"aggregate\": { \"on_insns_per_second\": %.1f, \
         \"off_insns_per_second\": %.1f, \"speedup\": %.2f }\n"
        on_ips off_ips
        (if off_ips > 0.0 then on_ips /. off_ips else 0.0);
      out "  }");
  (* Last on purpose: the record rows repeat mechanism names, and the
     snapshot scanner above keys on the first "lazypoline" row (the
     mechanisms section); different field names keep it unambiguous. *)
  (match record with
  | [] -> ()
  | rows ->
      out ",\n  \"record_overhead\": {\n";
      out "    \"iters\": %d,\n    \"rows\": [" record_iters;
      List.iteri
        (fun idx r ->
          out
            "%s\n      { \"mech\": \"%s\", \"cycles_off\": %.2f, \
             \"cycles_on\": %.2f,\n\
            \        \"wall_off_s\": %.6f, \"wall_on_s\": %.6f, \
             \"wall_ratio\": %.2f, \"events\": %d }"
            (if idx = 0 then "" else ",")
            (json_escape r.rr_name) r.rr_cycles_off r.rr_cycles_on
            r.rr_wall_off r.rr_wall_on (wall_ratio r) r.rr_events)
        rows;
      out "\n    ]\n  }");
  (match spans with
  | None -> ()
  | Some (conns, requests, rows) ->
      let module Obs = Sim_obs.Obs in
      out ",\n  \"spans\": {\n";
      out
        "    \"workload\": \"wrk\", \"flavour\": \"%s\", \"size_kb\": %d, \
         \"conns\": %d, \"requests\": %d,\n\
        \    \"rows\": ["
        (Workloads.Webserver.flavour_name spans_flavour)
        spans_size_kb conns requests;
      List.iteri
        (fun idx r ->
          let tt = r.sr_totals in
          out
            "%s\n      { \"mech\": \"%s\", \"total_cycles\": %Ld,\n\
            \        \"phases\": { \"app\": %Ld, \"interposer\": %Ld, \
             \"kernel\": %Ld, \"sched\": %Ld, \"blocked\": %Ld, \"other\": \
             %Ld },\n\
            \        \"kernel_by_nr\": ["
            (if idx = 0 then "" else ",")
            (json_escape r.sr_mech) tt.Obs.t_total tt.Obs.t_app tt.Obs.t_interp
            tt.Obs.t_kernel tt.Obs.t_sched tt.Obs.t_blocked tt.Obs.t_other;
          List.iteri
            (fun j (nr, c) ->
              out "%s{ \"nr\": %d, \"name\": \"%s\", \"cycles\": %Ld }"
                (if j = 0 then "" else ", ")
                nr
                (json_escape (Sim_kernel.Defs.syscall_name nr))
                c)
            tt.Obs.t_kernel_by_nr;
          out
            "],\n\
            \        \"latency_cycles\": { \"p50\": %.0f, \"p90\": %.0f, \
             \"p99\": %.0f, \"p999\": %.0f, \"max\": %.0f },\n\
            \        \"issued\": %d, \"completed\": %d, \"overflow\": %d, \
             \"evictions\": %d, \"wall_seconds\": %.3f }"
            r.sr_p50 r.sr_p90 r.sr_p99 r.sr_p999 r.sr_max r.sr_issued
            r.sr_completed r.sr_overflow r.sr_evictions r.sr_wall)
        rows;
      out "\n    ]\n  }");
  (match sites with
  | [] -> ()
  | rows ->
      let module P = Sim_obs.Provenance in
      out ",\n  \"sites\": {\n    \"workload\": \"minicc-callgraph\",\n";
      out "    \"rows\": [";
      List.iteri
        (fun idx r ->
          let p = r.tr_prov in
          out
            "%s\n      { \"mech\": \"%s\", \"distinct_sites\": %d, \
             \"rewrites\": %d,\n\
            \        \"unwind\": { \"attempts\": %d, \"resolved\": %d, \
             \"success_rate\": %.4f, \"truncated\": %d },\n\
            \        \"sites\": ["
            (if idx = 0 then "" else ",")
            (json_escape r.tr_mech) (P.distinct_sites p) (P.rewrite_count p)
            (P.unwind_attempts p) (P.unwind_resolved p)
            (P.unwind_success_rate p) (P.unwind_truncated p);
          List.iteri
            (fun j (s : P.site) ->
              let rw =
                match P.rewrite_of p s.P.s_pc with
                | Some r ->
                    Printf.sprintf "\"%s\"" (P.rewrite_kind_name r.P.rw_kind)
                | None -> "null"
              in
              out
                "%s\n          { \"pc\": %d, \"sym\": \"%s\", \"nr\": %d, \
                 \"count\": %d, \"kernel_cycles\": %.0f, \"rewrite\": %s,\n\
                \            \"paths\": {"
                (if j = 0 then "" else ",")
                s.P.s_pc
                (json_escape (P.symbolize p s.P.s_pc))
                s.P.s_nr (P.site_count s) (P.site_cycles s) rw;
              Array.iteri
                (fun pi n ->
                  out "%s \"%s\": %d"
                    (if pi = 0 then "" else ",")
                    P.path_names.(pi) n)
                s.P.s_paths;
              out " } }")
            (P.sites_sorted p);
          out "\n        ] }")
        rows;
      out "\n    ]\n  }");
  (match policy with
  | [] -> ()
  | rows ->
      out ",\n  \"policy\": {\n";
      out "    \"iters\": %d, \"nr\": %d, \"enforce_budget\": %.2f,\n"
        policy_iters policy_nr policy_budget;
      out "    \"rows\": [";
      List.iteri
        (fun idx r ->
          out
            "%s\n      { \"mech\": \"%s\", \"cycles_off\": %.2f, \
             \"cycles_report\": %.2f, \"cycles_enforce\": %.2f,\n\
            \        \"enforce_delta\": %.4f, \"checks\": %d }"
            (if idx = 0 then "" else ",")
            (json_escape r.yr_mech) r.yr_cycles_off r.yr_cycles_report
            r.yr_cycles_enforce (policy_enforce_delta r) r.yr_checks)
        rows;
      out "\n    ]\n  }");
  out "\n}\n";
  close_out oc;
  Printf.printf "[host] wrote %s (%d experiments, %d mechanisms%s%s%s%s%s)\n%!"
    path
    (List.length !reports) (List.length mechs)
    (if engine = [] then "" else ", engine sweep")
    (if record = [] then "" else ", record-overhead sweep")
    (if spans = None then "" else ", span sweep")
    (if sites = [] then "" else ", sites sweep")
    (if policy = [] then "" else ", policy sweep")

(* --- Regression snapshot (--snapshot) ------------------------------ *)

(* CI keeps one committed snapshot (BENCH_4.json at the repo root) and
   re-runs the bench against it: if the lazypoline fast path regressed
   by more than [regression_budget] in simulated cycles per iteration
   — the headline Table II number — the run fails.  The previous value
   is recovered with a plain string scan so the comparison needs no
   JSON parser. *)

let regression_budget = 0.10

let find_sub s needle from =
  let n = String.length needle and len = String.length s in
  let rec go i =
    if i + n > len then None
    else if String.sub s i n = needle then Some (i + n)
    else go (i + 1)
  in
  go from

(* The ablation rows ("lazypoline w/o xstate", ...) share the prefix,
   so match up to the closing quote of the exact name. *)
let scan_lazypoline_cycles path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match find_sub s "\"name\": \"lazypoline\"," 0 with
    | None -> None
    | Some i -> (
        match find_sub s "\"cycles_per_iteration\":" i with
        | None -> None
        | Some j ->
            let k = ref j in
            while
              !k < String.length s
              &&
              match s.[!k] with
              | '0' .. '9' | '.' | '-' | 'e' | '+' | ' ' -> true
              | _ -> false
            do
              incr k
            done;
            float_of_string_opt (String.trim (String.sub s j (!k - j))))
  end

(* "--snapshot auto" (and "--chaos-off-check auto") resolve to the
   highest-numbered BENCH_<n>.json in the working directory, so CI
   tracks the latest committed snapshot without a hardcoded
   filename. *)
let resolve_snapshot p =
  if p <> "auto" then p
  else begin
    let num f =
      let pre = "BENCH_" and suf = ".json" in
      let lp = String.length pre and ls = String.length suf in
      if
        String.length f > lp + ls
        && String.sub f 0 lp = pre
        && String.sub f (String.length f - ls) ls = suf
      then int_of_string_opt (String.sub f lp (String.length f - lp - ls))
      else None
    in
    let best = ref None in
    Array.iter
      (fun f ->
        match num f with
        | Some n -> (
            match !best with
            | Some (m, _) when m >= n -> ()
            | _ -> best := Some (n, f))
        | None -> ())
      (Sys.readdir ".");
    match !best with
    | Some (_, f) ->
        Printf.printf "[host] snapshot: auto-resolved to %s\n%!" f;
        f
    | None ->
        failwith "--snapshot auto: no BENCH_<n>.json in the working directory"
  end

let emit_snapshot path mechs engine record spans sites policy =
  let cur =
    match List.find_opt (fun m -> m.mr_name = "lazypoline") mechs with
    | Some m -> m.mr_cycles
    | None -> failwith "snapshot: no lazypoline mechanism row"
  in
  let prev = scan_lazypoline_cycles path in
  emit_json path mechs engine record spans sites policy;
  match prev with
  | None ->
      Printf.printf
        "[host] snapshot: no previous %s; baseline recorded (lazypoline %.2f \
         cycles/iter)\n%!"
        path cur
  | Some p when p > 0.0 ->
      let ratio = (cur -. p) /. p in
      Printf.printf
        "[host] snapshot: lazypoline fast path %.2f -> %.2f cycles/iter \
         (%+.1f%%, budget +%.0f%%)\n%!"
        p cur (100.0 *. ratio)
        (100.0 *. regression_budget);
      if ratio > regression_budget then begin
        Printf.eprintf
          "[host] FAIL: lazypoline fast-path regression %.1f%% exceeds the \
           %.0f%% budget\n%!"
          (100.0 *. ratio)
          (100.0 *. regression_budget);
        exit 1
      end
  | Some p ->
      Printf.printf
        "[host] snapshot: previous value %.2f unusable; baseline rewritten\n%!"
        p

(* --- Chaos-off identity (--chaos-off-check) ------------------------ *)

(* The chaos engine must be free when disabled: a microbenchmark run
   with a zero-rate engine attached has to land on bit-identical
   simulated cycles — equal to the plain run of this build *and* to
   the lazypoline value in the committed snapshot (which predates the
   engine).  Cycle counts are exact, so unlike the regression gate
   above this is an equality check at the snapshot's printed
   precision, not a budget. *)
let check_chaos_off path mechs =
  let plain =
    match List.find_opt (fun m -> m.mr_name = "lazypoline") mechs with
    | Some m -> m.mr_cycles
    | None -> failwith "chaos-off check: no lazypoline mechanism row"
  in
  let ch =
    Sim_chaos.Chaos.fuzz ~rates:Sim_chaos.Chaos.zero_rates ~seed:1L ()
  in
  let off =
    Workloads.Microbench_prog.run ~iters:2_000 ~chaos:ch
      Workloads.Microbench_prog.Lazypoline_full
  in
  let fired = Sim_chaos.Chaos.count ch in
  let r2 x = Float.round (x *. 100.0) /. 100.0 in
  let snap = scan_lazypoline_cycles path in
  let ok_plain = off = plain && fired = 0 in
  let ok_snap = match snap with None -> true | Some p -> r2 off = r2 p in
  Printf.printf
    "[host] chaos-off: lazypoline %.2f cycles/iter with zero-rate engine \
     (plain %.2f, snapshot %s, %d injection(s))\n%!"
    off plain
    (match snap with Some p -> Printf.sprintf "%.2f" p | None -> "absent")
    fired;
  if ok_plain && ok_snap then
    Printf.printf "[host] chaos-off identity OK: bit-identical cycles\n%!"
  else begin
    Printf.eprintf
      "[host] FAIL: zero-rate chaos engine perturbed the run (%s)\n%!"
      (if not ok_plain then
         Printf.sprintf "off %.4f vs plain %.4f, %d injection(s)" off plain
           fired
       else
         Printf.sprintf "off %.2f vs snapshot %s" (r2 off)
           (match snap with Some p -> Printf.sprintf "%.2f" p | None -> "?"));
    exit 1
  end

let experiments : (string * string * (unit -> unit)) list =
  [
    ( "tableI",
      "characteristics matrix of the interposition mechanisms",
      fun () -> ignore (Harness.Experiments.table1 ()) );
    ( "tableII",
      "microbenchmark overheads (syscall 500)",
      fun () -> ignore (Harness.Experiments.table2 ()) );
    ( "fig4",
      "lazypoline overhead breakdown",
      fun () -> ignore (Harness.Experiments.fig4 ()) );
    ( "tableIII",
      "coreutils register-preservation expectations (Pin tool)",
      fun () -> ignore (Harness.Experiments.table3 ()) );
    ( "exhaustiveness",
      "Section V-A: JIT-compiled syscalls under each interposer",
      fun () -> ignore (Harness.Experiments.exhaustiveness ()) );
    ( "listing1",
      "xstate clobbering demo (Listing 1)",
      fun () -> ignore (Harness.Experiments.listing1 ()) );
    ( "fig5",
      "web server macrobenchmarks",
      fun () -> ignore (Harness.Experiments.fig5 ()) );
    ( "ablation",
      "selector-only SUD vs classic deployment; lazy-rewrite amortisation",
      fun () -> ignore (Harness.Experiments.ablation ()) );
  ]

let fig5_fast () =
  ignore
    (Harness.Experiments.fig5 ~sizes:[ 1; 64 ] ~worker_counts:[ 1 ]
       ~flavours:[ Workloads.Webserver.Nginx_like ] ())

(* --- Traced Table II re-run (--trace) ------------------------------ *)

(* Re-run the Table II mechanisms with the event tracer attached and
   export one merged Chrome trace so the dispatch paths of the
   different interposers can be compared side by side in Perfetto.
   Fewer iterations than the real benchmark: the point is the
   timeline, not the steady-state cycle count. *)
let emit_trace path =
  let open Workloads.Microbench_prog in
  let configs =
    [ Zpoline; Lazypoline_noxstate; Lazypoline_full; Sud; Native_sud_allow ]
  in
  let groups =
    List.map
      (fun config ->
        let tr = Sim_trace.Tracer.create ~ncpus:1 () in
        ignore (run ~iters:2_000 ~tracer:tr config);
        (config_name config, Sim_trace.Tracer.events tr))
      configs
  in
  let json =
    Sim_trace.Export.chrome_json_groups ~name_of_nr:Sim_kernel.Defs.syscall_name
      groups
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "[host] wrote %s (%d mechanism groups)\n%!" path
    (List.length groups)

(* --- Bechamel: simulator hot-path microbenchmarks ------------------ *)

let bechamel_tests () =
  let open Bechamel in
  (* One Test.make per paper table/figure, benchmarking the hot kernel
     of that experiment at a tiny scale. *)
  let t_table1 =
    Test.make ~name:"tableI_bpf_filter_run"
      (Staged.stage (fun () ->
           let d =
             {
               Sim_kernel.Bpf.nr = 39;
               arch = Sim_kernel.Bpf.audit_arch_x86_64;
               instruction_pointer = 0x400000;
               args = Array.make 6 0L;
             }
           in
           ignore (Sim_kernel.Bpf.run Baselines.Seccomp_bpf.inspect_all d)))
  in
  let micro_iter config =
    Staged.stage (fun () ->
        ignore (Workloads.Microbench_prog.run ~iters:50 config))
  in
  let t_table2 =
    Test.make ~name:"tableII_microbench_50_iters_lazypoline"
      (micro_iter Workloads.Microbench_prog.Lazypoline_full)
  in
  let t_fig4 =
    Test.make ~name:"fig4_microbench_50_iters_zpoline"
      (micro_iter Workloads.Microbench_prog.Zpoline)
  in
  let t_table3 =
    Test.make ~name:"tableIII_pin_run_pwd"
      (Staged.stage (fun () ->
           ignore
             (Workloads.Coreutils.run_under_pin
                ~distro:Workloads.Coreutils.Glibc_2_31 "pwd")))
  in
  let t_exh =
    Test.make ~name:"sectionVA_minicc_compile"
      (Staged.stage (fun () ->
           ignore (Minicc.Codegen.compile "long main() { return syscall(39); }")))
  in
  (* The CPU hot loop with and without the decoded-instruction cache:
     the gap between these two is the raw win of skipping per-step
     fetch/decode. *)
  let cpu_step_loop ~name ~icache =
    let m = Sim_mem.Mem.create () in
    let blob =
      Sim_asm.Asm.assemble ~base:0x1000
        (Sim_asm.Asm.
           [
             Label "top"; mov_ri Sim_isa.Isa.rax 1;
             add_ri Sim_isa.Isa.rax 2; Jmp_l "top";
           ])
    in
    Sim_mem.Mem.map m ~addr:0x1000 ~len:4096 ~perm:Sim_mem.Mem.rx;
    Sim_mem.Mem.poke_bytes m 0x1000 blob.Sim_asm.Asm.bytes;
    let c = Sim_cpu.Cpu.create () in
    Test.make ~name
      (Staged.stage (fun () ->
           c.Sim_cpu.Cpu.rip <- 0x1000;
           for _ = 1 to 1000 do
             ignore (Sim_cpu.Cpu.step ?icache c m)
           done))
  in
  let t_fig5 =
    cpu_step_loop ~name:"fig5_cpu_step_1000_insns_uncached" ~icache:None
  in
  let t_fig5_ic =
    cpu_step_loop ~name:"fig5_cpu_step_1000_insns_icache"
      ~icache:(Some (Sim_cpu.Icache.create ()))
  in
  [ t_table1; t_table2; t_fig4; t_table3; t_exh; t_fig5; t_fig5_ic ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline (String.make 72 '-');
  print_endline "Bechamel: simulator hot-path microbenchmarks (ns per run)";
  print_endline (String.make 72 '-');
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) ~kde:(Some 100) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ x ] -> Printf.printf "%-44s %12.1f ns/run\n%!" name x
          | _ -> Printf.printf "%-44s (no estimate)\n%!" name)
        results)
    (List.map (fun t -> Test.make_grouped ~name:"" ~fmt:"%s%s" [ t ])
       (bechamel_tests ()))

let () =
  let args = Array.to_list Sys.argv in
  let only =
    List.filteri (fun i _ -> i > 0) args
    |> List.fold_left
         (fun (acc, expect) a ->
           if expect then (a :: acc, false)
           else if a = "--only" then (acc, true)
           else (acc, false))
         ([], false)
    |> fst
  in
  let fast = List.mem "--fast" args in
  if List.mem "--list" args then begin
    List.iter
      (fun (name, desc, _) -> Printf.printf "%-16s %s\n" name desc)
      experiments;
    Printf.printf "%-16s %s\n" "bechamel" "simulator hot-path microbenchmarks";
    exit 0
  end;
  let json_path =
    let rec find = function
      | "--json" :: p :: _ -> p
      | _ :: rest -> find rest
      | [] -> "bench-results.json"
    in
    find args
  in
  let trace_path =
    let rec find = function
      | "--trace" :: p :: _ -> Some p
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let snapshot_path =
    let rec find = function
      | "--snapshot" :: p :: _ -> Some p
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let chaos_off_path =
    let rec find = function
      | "--chaos-off-check" :: p :: _ -> Some p
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let want name = only = [] || List.mem name only in
  List.iter
    (fun (name, _, f) ->
      if want name then
        timed name (if name = "fig5" && fast then fig5_fast else f))
    experiments;
  if want "bechamel" then run_bechamel ();
  (match trace_path with Some p -> emit_trace p | None -> ());
  (* Always written, even for --only runs with no host reports: the
     per-mechanism cycle rows and metric snapshots are cheap and make
     every invocation machine-readable.  The rows are computed once and
     shared with the regression snapshot. *)
  let mechs = mechanism_rows () in
  (* The engine sweep (blocks on vs. off across the Table II configs)
     is a few seconds of host time, so it is skippable for quick local
     iterations but on by default: every committed BENCH_<n>.json must
     carry the engine-on/engine-off throughput numbers. *)
  let engine =
    if List.mem "--no-engine-sweep" args then []
    else begin
      let rows = engine_rows () in
      let on_ips, off_ips = engine_aggregate rows in
      Printf.printf
        "[host] engine sweep: %.1f M insn/s (blocks) vs %.1f M insn/s \
         (interp) — %.2fx across %d Table II configs\n%!"
        (on_ips /. 1e6) (off_ips /. 1e6)
        (if off_ips > 0.0 then on_ips /. off_ips else 0.0)
        (List.length rows);
      rows
    end
  in
  (* Record-overhead sweep: audit recorder off vs. on across the six
     Table II mechanisms.  Gating — a non-zero simulated-cycle delta
     breaks the observation-only contract and fails the run — so it is
     on by default, skippable with --no-record-sweep for quick local
     iterations; committed BENCH_<n>.json snapshots must carry it. *)
  let record =
    if List.mem "--no-record-sweep" args then []
    else begin
      let rows = record_rows () in
      check_record_rows rows;
      rows
    end
  in
  (* Request-flow span sweep: the wrk macrobench under all six
     mechanisms with the span recorder attached (simtrace spans at
     bench scale).  Gating — phase rows must sum exactly to the run's
     total simulated cycles with <1% unattributed, and no request may
     fall out of the recorder — so it is on by default like the other
     sweeps, downscaled by --fast and skippable with
     --no-spans-sweep.  --conns / --requests override the scale. *)
  let int_flag name default =
    let rec find = function
      | a :: v :: _ when a = name -> (
          match int_of_string_opt v with
          | Some n when n > 0 -> n
          | _ -> failwith (name ^ ": positive integer expected"))
      | _ :: rest -> find rest
      | [] -> default
    in
    find args
  in
  let spans =
    if List.mem "--no-spans-sweep" args then None
    else begin
      let conns = int_flag "--conns" (if fast then 16 else 100) in
      let requests = int_flag "--requests" (if fast then 2_000 else 100_000) in
      Some (conns, requests, spans_rows ~conns ~requests ())
    end
  in
  (* Per-call-site provenance sweep: six mechanisms over the
     call-graph minicc workload with the provenance recorder on.
     Gating — 99% unwind success and per-site dispatch purity
     (lazypoline rewritten sites fast-path-only after their one
     SIGSYS) — so on by default, skippable with --no-sites-sweep. *)
  let sites =
    if List.mem "--no-sites-sweep" args then [] else sites_rows ()
  in
  (* Syscall-flow-integrity sweep: the microbench under the six Table
     II mechanisms with the policy engine off / report / enforce.
     Gating — report mode must be bit-identical to off, the clean loop
     must see zero denials, and the lazypoline enforce fast path must
     stay within the policy budget — so on by default, skippable with
     --no-policy-sweep. *)
  let policy =
    if List.mem "--no-policy-sweep" args then []
    else begin
      let rows = policy_rows () in
      check_policy_rows rows;
      rows
    end
  in
  emit_json json_path mechs engine record spans sites policy;
  (match chaos_off_path with
  | Some p -> check_chaos_off (resolve_snapshot p) mechs
  | None -> ());
  if List.mem "--spans-off-check" args then check_spans_off ();
  match snapshot_path with
  | Some p ->
      emit_snapshot (resolve_snapshot p) mechs engine record spans sites policy
  | None -> ()
