(** simtrace — an strace for the simulated machine.

    Compiles a minicc program, runs it on the simulated kernel under a
    chosen interposition mechanism, and prints the syscall trace the
    interposer observed — or, with the [trace]/[report] subcommands,
    the machine-wide event trace the kernel-side tracer recorded
    (dispatch paths, rewrites, selector flips, signals, latency
    percentiles) as a Perfetto-loadable Chrome trace JSON or a
    human-readable report.

      dune exec bin/simtrace.exe -- run prog.c
      dune exec bin/simtrace.exe -- run --summary prog.c
      dune exec bin/simtrace.exe -- run --mech zpoline --jit prog.c
      dune exec bin/simtrace.exe -- trace prog.c --out trace.json
      dune exec bin/simtrace.exe -- report prog.c
      dune exec bin/simtrace.exe -- disasm prog.c
      dune exec bin/simtrace.exe -- pin prog.c
*)

open Cmdliner
open Sim_kernel
module Hook = Lazypoline.Hook

type mech = Lazypoline_m | Zpoline_m | Sud_m | Seccomp_user_m | Ptrace_m | None_m

let mech_conv =
  let parse = function
    | "lazypoline" -> Ok Lazypoline_m
    | "zpoline" -> Ok Zpoline_m
    | "sud" -> Ok Sud_m
    | "seccomp-user" -> Ok Seccomp_user_m
    | "ptrace" -> Ok Ptrace_m
    | "none" -> Ok None_m
    | s -> Error (`Msg ("unknown mechanism: " ^ s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with
      | Lazypoline_m -> "lazypoline"
      | Zpoline_m -> "zpoline"
      | Sud_m -> "sud"
      | Seccomp_user_m -> "seccomp-user"
      | Ptrace_m -> "ptrace"
      | None_m -> "none")
  in
  Arg.conv (parse, print)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROG.c")

let mech_arg =
  Arg.(
    value
    & opt mech_conv Lazypoline_m
    & info [ "m"; "mech" ] ~docv:"MECH"
        ~doc:
          "Interposition mechanism: lazypoline, zpoline, sud, seccomp-user, \
           ptrace, or none.")

let jit_arg =
  Arg.(
    value & flag
    & info [ "jit" ]
        ~doc:
          "Run the program through the JIT driver (tcc -run style) instead \
           of loading it statically.")

let xstate_arg =
  Arg.(
    value & opt bool true
    & info [ "preserve-xstate" ]
        ~doc:"Preserve SSE/x87 state across interposition (lazypoline only).")

let setup_fs k =
  ignore (Vfs.add_file k.Types.vfs "/etc/hosts" "127.0.0.1 localhost\n");
  ignore (Vfs.add_file k.Types.vfs "/tmp/file_a" (String.make 256 'a'))

(** Compile [file], install [mech], run to completion.  The console
    hook is restored even if the run raises (it is global state; a
    leaked hook would redirect the console of every later run in this
    process).  Returns the kernel, the task and the strace log. *)
let execute ?tracer file mech jit preserve_xstate =
  let src = read_file file in
  let k = Kernel.create () in
  k.Types.tracer <- tracer;
  setup_fs k;
  let img =
    if jit then Minicc.Jit.driver_image src
    else Minicc.Codegen.compile_to_image src
  in
  let t = Kernel.spawn k img in
  let hook, log = Hook.strace () in
  (match mech with
  | None_m -> ()
  | Lazypoline_m ->
      ignore (Lazypoline.install ~preserve_xstate k t hook)
  | Zpoline_m -> ignore (Baselines.Zpoline.install k t hook)
  | Sud_m -> ignore (Baselines.Sud_interposer.install k t hook)
  | Seccomp_user_m -> ignore (Baselines.Seccomp_user.install k t hook)
  | Ptrace_m -> ignore (Baselines.Ptrace_interposer.install k t hook));
  Kernel.console_hook := Some print_string;
  let finished =
    Fun.protect
      ~finally:(fun () -> Kernel.console_hook := None)
      (fun () -> Kernel.run_until_exit k)
  in
  if not finished then prerr_endline "warning: program did not terminate";
  (k, t, log)

let print_summary (tr : Sim_trace.Tracer.t) =
  let spans = Sim_trace.Summary.spans (Sim_trace.Tracer.events tr) in
  Printf.eprintf "\ndispatch paths:\n";
  List.iter
    (fun (p, n) ->
      Printf.eprintf "  %-12s %8d\n" (Sim_trace.Event.path_name p) n)
    (Sim_trace.Summary.path_counts spans);
  Printf.eprintf "\nsyscall latency (cycles):\n";
  Printf.eprintf "  %-16s %-12s %7s %8s %8s\n" "syscall" "path" "count" "p50"
    "p99";
  List.iter
    (fun (r : Sim_trace.Summary.latency_row) ->
      Printf.eprintf "  %-16s %-12s %7d %8.0f %8.0f\n"
        (Defs.syscall_name r.lr_nr)
        (Sim_trace.Event.path_name r.lr_path)
        r.lr_count r.lr_p50 r.lr_p99)
    (Sim_trace.Summary.latency_rows spans)

let run_cmd file mech jit preserve_xstate summary =
  let tracer =
    if summary then Some (Sim_trace.Tracer.create ~ncpus:1 ()) else None
  in
  let _k, t, log = execute ?tracer file mech jit preserve_xstate in
  List.iter (fun l -> Printf.eprintf "%s\n" l) (List.rev !log);
  Printf.eprintf "+++ exited with %d (%Ld cycles) +++\n" t.Types.exit_code
    t.Types.tcycles;
  (match tracer with Some tr -> print_summary tr | None -> ());
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

let trace_cmd file mech jit preserve_xstate out =
  let tr = Sim_trace.Tracer.create ~ncpus:1 () in
  let _k, t, _log = execute ~tracer:tr file mech jit preserve_xstate in
  let json =
    Sim_trace.Export.chrome_json ~name_of_nr:Defs.syscall_name
      ~name:(Filename.basename file)
      (Sim_trace.Tracer.events tr)
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Printf.eprintf "wrote %s: %d events retained, %d dropped\n" out
    (Sim_trace.Tracer.retained tr)
    (Sim_trace.Tracer.dropped tr);
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

let report_cmd file mech jit preserve_xstate =
  let tr = Sim_trace.Tracer.create ~ncpus:1 () in
  let _k, t, _log = execute ~tracer:tr file mech jit preserve_xstate in
  print_string (Sim_trace.Summary.report ~name_of_nr:Defs.syscall_name tr);
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

let disasm_cmd file =
  let src = read_file file in
  let text, data = Minicc.Codegen.compile src in
  Printf.printf "; text at 0x%x (%d bytes), data at 0x%x (%d bytes)\n"
    text.Sim_asm.Asm.base
    (String.length text.Sim_asm.Asm.bytes)
    data.Sim_asm.Asm.base
    (String.length data.Sim_asm.Asm.bytes);
  List.iter
    (fun l -> Format.printf "%a@." Sim_isa.Disasm.pp_line l)
    (Sim_isa.Disasm.sweep ~base:text.Sim_asm.Asm.base text.Sim_asm.Asm.bytes)

let pin_cmd file =
  let src = read_file file in
  let k = Kernel.create () in
  setup_fs k;
  let t = Kernel.spawn k (Minicc.Codegen.compile_to_image src) in
  let pin = Sim_pin.Pin.attach k t in
  if not (Kernel.run_until_exit k) then
    prerr_endline "warning: program did not terminate";
  Printf.printf "register-preservation expectations across syscalls:\n";
  let show e =
    Printf.printf "  %-6s expected preserved across %s\n"
      (Sim_pin.Pin.reg_class_to_string e.Sim_pin.Pin.reg)
      (Defs.syscall_name e.Sim_pin.Pin.across_syscall)
  in
  List.iter show (Sim_pin.Pin.xstate_expectations pin);
  List.iter show (Sim_pin.Pin.gpr_expectations pin);
  Printf.printf "expects xstate preservation: %b\n"
    (Sim_pin.Pin.expects_xstate pin)

let summary_arg =
  Arg.(
    value & flag
    & info [ "summary" ]
        ~doc:
          "After the run, print dispatch-path counts and per-syscall \
           latency percentiles from the machine-wide event tracer.")

let out_arg =
  Arg.(
    value
    & opt string "trace.json"
    & info [ "o"; "out" ] ~docv:"PATH"
        ~doc:"Output path for the Chrome trace-event JSON.")

let run_t =
  Cmd.v (Cmd.info "run" ~doc:"Run a minicc program under an interposer")
    Term.(
      const run_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg $ summary_arg)

let trace_t =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a minicc program with the machine-wide tracer on and export \
          the event timeline as Chrome trace-event JSON (loadable in \
          Perfetto / chrome://tracing)")
    Term.(
      const trace_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg $ out_arg)

let report_t =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a minicc program with the machine-wide tracer on and print \
          the human-readable report: dispatch paths, rewrites and other \
          events, syscall-latency percentiles")
    Term.(const report_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg)

let disasm_t =
  Cmd.v (Cmd.info "disasm" ~doc:"Compile a minicc program and disassemble it")
    Term.(const disasm_cmd $ file_arg)

let pin_t =
  Cmd.v
    (Cmd.info "pin"
       ~doc:"Run the Pin-style register-preservation analysis on a program")
    Term.(const pin_cmd $ file_arg)

let () =
  let info =
    Cmd.info "simtrace" ~version:"1.0"
      ~doc:"strace/objdump/pin for the lazypoline simulator"
  in
  exit (Cmd.eval (Cmd.group info [ run_t; trace_t; report_t; disasm_t; pin_t ]))
