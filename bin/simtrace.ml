(** simtrace — an strace for the simulated machine.

    Compiles a minicc program, runs it on the simulated kernel under a
    chosen interposition mechanism, and prints the syscall trace the
    interposer observed — or, with the [trace]/[report] subcommands,
    the machine-wide event trace the kernel-side tracer recorded
    (dispatch paths, rewrites, selector flips, signals, latency
    percentiles) as a Perfetto-loadable Chrome trace JSON or a
    human-readable report.

    The [stat] subcommand prints a perf-stat-style counter summary
    from the metrics registry; [profile] runs the cycle-clock sampling
    profiler and writes collapsed stacks for flamegraph.pl.

      dune exec bin/simtrace.exe -- run prog.c
      dune exec bin/simtrace.exe -- run --summary prog.c
      dune exec bin/simtrace.exe -- run --mech zpoline --jit prog.c
      dune exec bin/simtrace.exe -- trace prog.c --out trace.json
      dune exec bin/simtrace.exe -- report prog.c
      dune exec bin/simtrace.exe -- stat prog.c
      dune exec bin/simtrace.exe -- stat --format prometheus prog.c
      dune exec bin/simtrace.exe -- profile prog.c --out prof.folded
      dune exec bin/simtrace.exe -- sites prog.c --flame sites.folded
      dune exec bin/simtrace.exe -- record prog.c --out prog.audit
      dune exec bin/simtrace.exe -- replay prog.audit
      dune exec bin/simtrace.exe -- diff --mechanisms \
        raw,sud,zpoline,lazypoline,seccomp,ptrace prog.c
      dune exec bin/simtrace.exe -- disasm prog.c
      dune exec bin/simtrace.exe -- pin prog.c
*)

open Cmdliner
open Sim_kernel
module Hook = Lazypoline.Hook
module Audit = Sim_audit.Audit
module Divergence = Harness.Divergence
module Dbg = Sim_debug.Debug
module Art = Sim_artifact.Artifact
module Policy = Sim_policy.Policy

type mech = Lazypoline_m | Zpoline_m | Sud_m | Seccomp_user_m | Ptrace_m | None_m

let mech_of_string = function
  | "lazypoline" -> Ok Lazypoline_m
  | "zpoline" -> Ok Zpoline_m
  | "sud" -> Ok Sud_m
  | "seccomp-user" | "seccomp" -> Ok Seccomp_user_m
  | "ptrace" -> Ok Ptrace_m
  | "none" | "raw" -> Ok None_m
  | s -> Error (`Msg ("unknown mechanism: " ^ s))

let mech_to_string = function
  | Lazypoline_m -> "lazypoline"
  | Zpoline_m -> "zpoline"
  | Sud_m -> "sud"
  | Seccomp_user_m -> "seccomp-user"
  | Ptrace_m -> "ptrace"
  | None_m -> "none"

let mech_conv =
  let print fmt m = Format.pp_print_string fmt (mech_to_string m) in
  Arg.conv (mech_of_string, print)

let dmech_of_mech = function
  | Lazypoline_m -> Divergence.Lazypoline_m
  | Zpoline_m -> Divergence.Zpoline
  | Sud_m -> Divergence.Sud
  | Seccomp_user_m -> Divergence.Seccomp
  | Ptrace_m -> Divergence.Ptrace
  | None_m -> Divergence.Raw

let flavour_of_string = function
  | "nginx" | "nginx-sim" -> Ok Workloads.Webserver.Nginx_like
  | "lighttpd" | "lighttpd-sim" -> Ok Workloads.Webserver.Lighttpd_like
  | s -> Error (`Msg ("unknown flavour: " ^ s))

let flavour_conv =
  let print fmt f =
    Format.pp_print_string fmt (Workloads.Webserver.flavour_name f)
  in
  Arg.conv (flavour_of_string, print)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_out path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROG.c")

let mech_arg =
  Arg.(
    value
    & opt mech_conv Lazypoline_m
    & info [ "m"; "mech" ] ~docv:"MECH"
        ~doc:
          "Interposition mechanism: lazypoline, zpoline, sud, seccomp-user, \
           ptrace, or none.")

let jit_arg =
  Arg.(
    value & flag
    & info [ "jit" ]
        ~doc:
          "Run the program through the JIT driver (tcc -run style) instead \
           of loading it statically.")

let xstate_arg =
  Arg.(
    value & opt bool true
    & info [ "preserve-xstate" ]
        ~doc:"Preserve SSE/x87 state across interposition (lazypoline only).")

let setup_fs k =
  ignore (Vfs.add_file k.Types.vfs "/etc/hosts" "127.0.0.1 localhost\n");
  ignore (Vfs.add_file k.Types.vfs "/tmp/file_a" (String.make 256 'a'))

(** Compile [file], install [mech], run to completion.  The console
    hook is restored even if the run raises (it is global state; a
    leaked hook would redirect the console of every later run in this
    process).  Returns the kernel, the task and the decoded strace
    log — recorded kernel-side through the shared {!Strace} decoder,
    so it carries results with errno names and covers every dispatch
    (including [--mech none], which no interposer hook would see). *)
let execute ?tracer ?metrics ?profiler ?auditor ?obs ?prov ?policy ?blocks
    file mech jit preserve_xstate =
  let src = read_file file in
  let k = Kernel.create ?blocks () in
  k.Types.tracer <- tracer;
  (match metrics with Some m -> Kernel.attach_metrics k m | None -> ());
  (match auditor with Some a -> Kernel.attach_audit k a | None -> ());
  (match obs with Some o -> Divergence.attach_obs k o | None -> ());
  (match prov with Some p -> Kernel.attach_prov k p | None -> ());
  (match policy with Some p -> Kernel.attach_policy k p | None -> ());
  setup_fs k;
  let img =
    if jit then Minicc.Jit.driver_image src
    else Minicc.Codegen.compile_to_image src
  in
  (match prov with
  | Some p -> Sim_obs.Provenance.add_symbols p img.Types.img_symbols
  | None -> ());
  (match profiler with
  | Some p ->
      k.Types.profiler <- Some p;
      (* The kernel knows nothing about the interposer's address-space
         layout; the CLI does, so it registers the regions the sampler
         should attribute to the mechanism rather than the guest. *)
      Sim_metrics.Profiler.add_region p ~lo:0 ~hi:Sim_mem.Mem.page_size
        ~name:"zpoline-trampoline";
      Sim_metrics.Profiler.add_region p ~lo:Lazypoline.Layout.interp_code_base
        ~hi:(Lazypoline.Layout.interp_code_base + 0x10000)
        ~name:"interposer";
      Sim_metrics.Profiler.add_symbols p img.Types.img_symbols
  | None -> ());
  let t = Kernel.spawn k img in
  let log = Strace.attach k in
  let hook = Hook.strace () |> fst in
  (match mech with
  | None_m -> ()
  | Lazypoline_m ->
      ignore (Lazypoline.install ~preserve_xstate k t hook)
  | Zpoline_m -> ignore (Baselines.Zpoline.install k t hook)
  | Sud_m -> ignore (Baselines.Sud_interposer.install k t hook)
  | Seccomp_user_m -> ignore (Baselines.Seccomp_user.install k t hook)
  | Ptrace_m -> ignore (Baselines.Ptrace_interposer.install k t hook));
  Kernel.console_hook := Some print_string;
  let finished =
    Fun.protect
      ~finally:(fun () -> Kernel.console_hook := None)
      (fun () -> Kernel.run_until_exit k)
  in
  if not finished then prerr_endline "warning: program did not terminate";
  (k, t, log)

let print_summary (tr : Sim_trace.Tracer.t) =
  let spans = Sim_trace.Summary.spans (Sim_trace.Tracer.events tr) in
  Printf.eprintf "\ntrace ring: %d events retained, %d dropped\n"
    (Sim_trace.Tracer.retained tr)
    (Sim_trace.Tracer.dropped tr);
  let path_counts = Sim_trace.Summary.path_counts spans in
  let count_of p =
    match List.assoc_opt p path_counts with Some n -> n | None -> 0
  in
  Printf.eprintf "dispatch split: %d fast-path, %d slow-path (sud-sigsys)\n"
    (count_of Sim_trace.Event.Fast_path)
    (count_of Sim_trace.Event.Sud_sigsys);
  Printf.eprintf "\ndispatch paths:\n";
  List.iter
    (fun (p, n) ->
      Printf.eprintf "  %-12s %8d\n" (Sim_trace.Event.path_name p) n)
    path_counts;
  Printf.eprintf "\nsyscall latency (cycles):\n";
  Printf.eprintf "  %-16s %-12s %7s %8s %8s\n" "syscall" "path" "count" "p50"
    "p99";
  List.iter
    (fun (r : Sim_trace.Summary.latency_row) ->
      Printf.eprintf "  %-16s %-12s %7d %8.0f %8.0f\n"
        (Defs.syscall_name r.lr_nr)
        (Sim_trace.Event.path_name r.lr_path)
        r.lr_count r.lr_p50 r.lr_p99)
    (Sim_trace.Summary.latency_rows spans)

(** Block-engine counter deltas around one run: compiled blocks, block
    hits, SMC kills, interpreter fallbacks, and the hit ratio (share of
    retired instructions that executed inside a compiled block). *)
let print_block_summary ~before ~retired_before =
  let c0, h0, k0, i0, f0 = before in
  let c1, h1, k1, i1, f1 = Sim_cpu.Icache.block_totals () in
  let retired = !Sim_cpu.Ctx.retired - retired_before in
  let insns = i1 - i0 in
  let ratio = if retired > 0 then 100.0 *. float insns /. float retired else 0.0 in
  Printf.eprintf "\nblock engine: %d blocks compiled, %d block hits, %d SMC \
                  kills, %d fallbacks\n"
    (c1 - c0) (h1 - h0) (k1 - k0) (f1 - f0);
  Printf.eprintf "block-hit ratio: %d/%d instructions in blocks (%.1f%%)\n"
    insns retired ratio

(** Machine-wide causal-phase rows from the span recorder: where
    every simulated cycle of the run went. *)
let print_phase_summary (o : Sim_obs.Obs.t) (k : Types.kernel) =
  let clks = Array.map (fun (c : Types.cpu_slot) -> c.Types.clk) k.Types.cpus in
  let tt = Sim_obs.Obs.totals o ~clks in
  let total = tt.Sim_obs.Obs.t_total in
  Printf.eprintf "\nphase attribution (cycles):\n";
  List.iter
    (fun (name, c) ->
      Printf.eprintf "  %-12s %14Ld  %5.1f%%\n" name c
        (if total > 0L then 100.0 *. Int64.to_float c /. Int64.to_float total
         else 0.0))
    (Sim_obs.Obs.totals_rows tt);
  Printf.eprintf "  %-12s %14Ld\n" "total" total

let run_cmd file mech jit preserve_xstate summary no_blocks =
  let tracer =
    if summary then Some (Sim_trace.Tracer.create ~ncpus:1 ()) else None
  in
  let obs = if summary then Some (Sim_obs.Obs.create ~ncpus:1 ()) else None in
  let block_before = Sim_cpu.Icache.block_totals () in
  let retired_before = !Sim_cpu.Ctx.retired in
  let blocks = if no_blocks then Some false else None in
  let k, t, log = execute ?tracer ?obs ?blocks file mech jit preserve_xstate in
  List.iter (fun l -> Printf.eprintf "%s\n" l) (List.rev !log);
  Printf.eprintf "+++ exited with %d (%Ld cycles) +++\n" t.Types.exit_code
    t.Types.tcycles;
  (match tracer with
  | Some tr ->
      print_summary tr;
      print_block_summary ~before:block_before ~retired_before
  | None -> ());
  (match obs with Some o -> print_phase_summary o k | None -> ());
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

let trace_cmd file mech jit preserve_xstate out no_blocks =
  let tr = Sim_trace.Tracer.create ~ncpus:1 () in
  let blocks = if no_blocks then Some false else None in
  let _k, t, _log = execute ~tracer:tr ?blocks file mech jit preserve_xstate in
  let json =
    Sim_trace.Export.chrome_json ~name_of_nr:Defs.syscall_name
      ~name:(Filename.basename file)
      (Sim_trace.Tracer.events tr)
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  Printf.eprintf "wrote %s: %d events retained, %d dropped\n" out
    (Sim_trace.Tracer.retained tr)
    (Sim_trace.Tracer.dropped tr);
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

let report_cmd file mech jit preserve_xstate no_blocks =
  let tr = Sim_trace.Tracer.create ~ncpus:1 () in
  let blocks = if no_blocks then Some false else None in
  let _k, t, _log = execute ~tracer:tr ?blocks file mech jit preserve_xstate in
  print_string (Sim_trace.Summary.report ~name_of_nr:Defs.syscall_name tr);
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

(** perf-stat-style one-shot counter summary from the metrics
    registry. *)
let stat_cmd file mech jit preserve_xstate format no_blocks =
  let m = Kmetrics.create () in
  let blocks = if no_blocks then Some false else None in
  let _k, t, _log = execute ~metrics:m ?blocks file mech jit preserve_xstate in
  (match format with
  | "prometheus" -> print_string (Kmetrics.prometheus m)
  | "json" -> print_string (Kmetrics.to_json m)
  | _ ->
      let module M = Sim_metrics.Metrics in
      let v name = Option.value ~default:0 (M.find m.Kmetrics.registry name) in
      Printf.printf "\n Counter summary for '%s':\n\n" (Filename.basename file);
      let row fmt_name value = Printf.printf "  %16s  %s\n" value fmt_name in
      let irow name value = row name (Printf.sprintf "%d" value) in
      irow "cycles" (v "sim_cycles");
      irow "syscalls" (v "sim_syscalls_total");
      List.iter
        (fun p ->
          let n = Kmetrics.path_count m p in
          if n > 0 then
            irow
              (Printf.sprintf "syscalls:%s" (Sim_trace.Event.path_name p))
              n)
        Sim_trace.Event.all_paths;
      irow "rewrites" (v "sim_rewrites_total");
      irow "selector-flips" (v "sim_sud_selector_flips_total");
      irow "context-switches" (v "sim_context_switches_total");
      irow "signal-deliveries" (v "sim_signal_deliveries_total");
      irow "sigreturns" (v "sim_sigreturns_total");
      irow "icache-hits" (v "sim_icache_hits_total");
      irow "icache-misses" (v "sim_icache_misses_total");
      irow "blocks-compiled" (v "sim_blocks_compiled_total");
      irow "block-hits" (v "sim_block_hits_total");
      irow "block-insns" (v "sim_block_insns_total");
      irow "block-kills" (v "sim_block_kills_total");
      irow "mmap-bytes" (v "sim_mmap_bytes_total");
      irow "mprotect-bytes" (v "sim_mprotect_bytes_total");
      irow "w-to-x-flips" (v "sim_wx_flips_total");
      print_newline ());
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

(** Sampling profile: run with the cycle-clock sampler attached and
    write collapsed stacks ("comm;context;symbol count" lines) for
    flamegraph.pl. *)
let profile_cmd file mech jit preserve_xstate out period no_blocks =
  let p = Sim_metrics.Profiler.create ~period () in
  let blocks = if no_blocks then Some false else None in
  let _k, t, _log = execute ~profiler:p ?blocks file mech jit preserve_xstate in
  let folded = Sim_metrics.Profiler.folded p in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc folded);
  Printf.eprintf "wrote %s: %d samples (1 per %d cycles)\n" out
    (Sim_metrics.Profiler.samples p)
    period;
  Printf.eprintf "\ntop stacks:\n";
  List.iter
    (fun (key, n) -> Printf.eprintf "  %8d  %s\n" n key)
    (Sim_metrics.Profiler.top ~n:10 p);
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

(** Per-call-site interposition ledger: run with the provenance
    recorder attached (guest rbp-chain unwinding at every audited
    syscall) and print the cost-sorted call-site table; optionally
    write collapsed call-site stacks for flamegraph.pl and the full
    ledger as JSON. *)
let sites_cmd file mech jit preserve_xstate flame out limit no_blocks =
  let module P = Sim_obs.Provenance in
  let p = P.create () in
  let blocks = if no_blocks then Some false else None in
  let _k, t, _log = execute ~prov:p ?blocks file mech jit preserve_xstate in
  print_string (P.table ~limit p);
  Printf.printf
    "\n%d distinct site(s), %d rewritten; unwind: %d/%d resolved (%.1f%%), %d \
     truncated\n"
    (P.distinct_sites p) (P.rewrite_count p) (P.unwind_resolved p)
    (P.unwind_attempts p)
    (100.0 *. P.unwind_success_rate p)
    (P.unwind_truncated p);
  (match flame with
  | Some path ->
      write_out path (P.folded ~comm:(Filename.basename file) p);
      Printf.eprintf "wrote %s (collapsed call-site stacks)\n" path
  | None -> ());
  (match out with
  | Some path ->
      write_out path (P.to_json p);
      Printf.eprintf "wrote %s\n" path
  | None -> ());
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

(** {1 record / replay / diff: the divergence auditor} *)

let audit_header file mech jit preserve_xstate checkpoint_every =
  let b = Buffer.create 256 in
  Art.add_magic b ~kind:Dbg.audit_artifact_kind
    ~version:Dbg.audit_artifact_version;
  Art.add_header b "file" file;
  Art.add_header b "mech" (mech_to_string mech);
  Art.add_header b "jit" (string_of_bool jit);
  Art.add_header b "preserve-xstate" (string_of_bool preserve_xstate);
  Art.add_header b "checkpoint-every" (string_of_int checkpoint_every);
  Buffer.contents b

(** One audited run; returns the auditor, the task and the serialized
    body (events, checkpoints, final state hash). *)
let audited_run file mech jit preserve_xstate checkpoint_every =
  let a = Audit.create ~checkpoint_every () in
  let k, t, _log = execute ~auditor:a file mech jit preserve_xstate in
  let final = Kernel.audit_final_hash k a in
  (a, t, Divergence.log_string ~final_hash:final a)

let record_cmd file mech jit preserve_xstate out checkpoint_every =
  if checkpoint_every <= 0 then begin
    Printf.eprintf
      "record: --checkpoint-every must be a positive number of application \
       syscalls (got %d)\n"
      checkpoint_every;
    exit 2
  end;
  let a, t, body = audited_run file mech jit preserve_xstate checkpoint_every in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (audit_header file mech jit preserve_xstate checkpoint_every);
      output_string oc body);
  Printf.eprintf
    "recorded %d events (%d app syscalls, %d checkpoints) -> %s\n"
    (List.length (Audit.entries a))
    (Audit.app_count a)
    (List.length (Audit.checkpoints a))
    out;
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

let body_lines s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "" && l.[0] <> '%')

let replay_cmd logfile =
  let content = read_file logfile in
  let header =
    match
      Art.parse_magic ~file:logfile ~kind:Dbg.audit_artifact_kind
        ~accept:[ Dbg.audit_artifact_version ] content
    with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok (_v, rest) -> Art.headers rest
  in
  let get key default =
    match List.assoc_opt key header with Some v -> v | None -> default
  in
  let file = get "file" "" in
  let mech =
    match mech_of_string (get "mech" "none") with
    | Ok m -> m
    | Error (`Msg e) ->
        prerr_endline e;
        exit 2
  in
  let jit = bool_of_string (get "jit" "false") in
  let xstate = bool_of_string (get "preserve-xstate" "true") in
  let ck = int_of_string (get "checkpoint-every" "64") in
  let _, _, body = audited_run file mech jit xstate ck in
  let old_lines = Array.of_list (body_lines content) in
  let new_lines = Array.of_list (body_lines body) in
  let n = min (Array.length old_lines) (Array.length new_lines) in
  let mismatch = ref None in
  (try
     for i = 0 to n - 1 do
       if old_lines.(i) <> new_lines.(i) then begin
         mismatch := Some i;
         raise Exit
       end
     done;
     if Array.length old_lines <> Array.length new_lines then begin
       mismatch := Some n;
       raise Exit
     end
   with Exit -> ());
  match !mismatch with
  | None ->
      Printf.printf "replay OK: %d lines bit-identical (streams, %s)\n"
        (Array.length old_lines)
        (if Array.exists (fun l -> l.[0] = 'F') old_lines then
           "checkpoints and final state hash"
         else "checkpoints")
  | Some i ->
      let at j (arr : string array) =
        if j < Array.length arr then arr.(j) else "<stream ended>"
      in
      Printf.printf "replay DIVERGED at line %d:\n  recorded: %s\n  replayed: %s\n"
        (i + 1) (at i old_lines) (at i new_lines);
      exit 1

(** {1 debug: time-travel debugging on an audit log} *)

let debug_repl s =
  print_endline (Dbg.info s);
  print_endline "time-travel debugger; type 'help' for commands, 'q' to quit";
  let rec loop () =
    print_string "(tdb) ";
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
        let r = Dbg.exec_command s line in
        if r.Dbg.out <> "" then print_endline r.Dbg.out;
        if r.Dbg.quit then () else loop ()
  in
  loop ()

let debug_cmd logfile prog mech_override script seek_request seek_site
    no_blocks =
  let content = read_file logfile in
  match Dbg.parse_log content with
  | Error e ->
      Printf.eprintf "%s: %s\n" logfile e;
      exit 2
  | Ok log -> (
      (* Wrk logs carry their whole workload in the % wrk header;
         program logs need the recorded source. *)
      let workload =
        match Dbg.wrk_of_header log with
        | Some w -> w
        | None ->
            let file =
              match (prog, Dbg.header_value log "file") with
              | Some f, _ -> f
              | None, Some f -> f
              | None, None ->
                  Printf.eprintf
                    "%s has no %%%% file header; pass the program: simtrace \
                     debug LOG PROG.c\n"
                    logfile;
                  exit 2
            in
            let src =
              try read_file file
              with Sys_error e ->
                Printf.eprintf "cannot read the recorded program: %s\n" e;
                exit 2
            in
            let jit = Dbg.header_value log "jit" = Some "true" in
            Divergence.Prog { src; jit }
      in
      let mech =
        match mech_override with
        | None -> None
        | Some name -> (
            match Divergence.mech_of_string name with
            | Some m -> Some m
            | None ->
                Printf.eprintf "unknown mechanism: %s\n" name;
                exit 2)
      in
      let blocks = if no_blocks then Some false else None in
      let s = Dbg.create ?mech ?blocks ~workload log in
      let spans_path = logfile ^ ".spans" in
      if Sys.file_exists spans_path then
        Dbg.load_spans s (read_file spans_path);
      (match seek_request with
      | Some rid ->
          let r = Dbg.exec_command s (Printf.sprintf "request %d" rid) in
          if r.Dbg.out <> "" then print_endline r.Dbg.out;
          if not r.Dbg.ok then exit 1
      | None -> ());
      (match seek_site with
      | Some pc ->
          let r = Dbg.exec_command s (Printf.sprintf "site %s" pc) in
          if r.Dbg.out <> "" then print_endline r.Dbg.out;
          if not r.Dbg.ok then exit 1
      | None -> ());
      match script with
      | Some path -> exit (Dbg.run_script s ~print:print_string (read_file path))
      | None -> debug_repl s)

(** {1 spans: request-flow tracing on the wrk macrobench} *)

let spans_cmd mech flavour size_kb conns requests out record_out no_blocks =
  let dmech = dmech_of_mech mech in
  let blocks = if no_blocks then Some false else None in
  let o = Sim_obs.Obs.create ~ncpus:1 () in
  (* the provenance ledger feeds each exemplar's hottest call site *)
  let p = Sim_obs.Provenance.create () in
  let workload = Divergence.Wrk { flavour; size_kb; conns; requests } in
  let a, k, _t = Divergence.run_audited ?blocks ~obs:o ~prov:p dmech workload in
  let clks = Array.map (fun (c : Types.cpu_slot) -> c.Types.clk) k.Types.cpus in
  print_string
    (Sim_obs.Obs.report ~name_of_nr:Defs.syscall_name
       ~name_of_site:(Sim_obs.Provenance.symbolize p) o ~clks);
  (match out with
  | Some path ->
      let tracks =
        List.map
          (fun r ->
            ( r.Sim_obs.Obs.rid,
              List.map
                (fun (s : Sim_obs.Obs.seg) ->
                  ( Sim_obs.Obs.phase_name s.Sim_obs.Obs.s_phase,
                    s.Sim_obs.Obs.s_start,
                    s.Sim_obs.Obs.s_end ))
                (Sim_obs.Obs.segments r) ))
          (Sim_obs.Obs.exemplars o)
      in
      write_out path (Sim_trace.Export.request_tracks_json tracks);
      Printf.eprintf "wrote %s: %d request track(s)\n" path
        (List.length tracks)
  | None -> ());
  (match record_out with
  | Some path ->
      let fh = Kernel.audit_final_hash k a in
      let header =
        let b = Buffer.create 128 in
        Art.add_magic b ~kind:Dbg.audit_artifact_kind
          ~version:Dbg.audit_artifact_version;
        Art.add_header b "wrk"
          (Printf.sprintf "%s %d %d %d"
             (Workloads.Webserver.flavour_name flavour)
             size_kb conns requests);
        Art.add_header b "mech" (Divergence.mech_name dmech);
        Art.add_header b "checkpoint-every" "64";
        Buffer.contents b
      in
      write_out path (header ^ Divergence.log_string ~final_hash:fh a);
      write_out (path ^ ".spans") (Sim_obs.Obs.sidecar o);
      Printf.eprintf "recorded %d app syscalls -> %s (+ %s.spans)\n"
        (Audit.app_count a) path path
  | None -> ());
  if Sim_obs.Obs.overflow o > 0 then begin
    Printf.eprintf "error: %d request(s) dropped at the in-flight cap\n"
      (Sim_obs.Obs.overflow o);
    exit 1
  end

let diff_cmd file mechs_str jit log_dir =
  let names =
    String.split_on_char ',' mechs_str
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let mechs =
    List.map
      (fun s ->
        match Divergence.mech_of_string s with
        | Some m -> m
        | None ->
            Printf.eprintf "unknown mechanism: %s\n" s;
            exit 2)
      names
  in
  let src = read_file file in
  let o = Divergence.diff ~mechs (Divergence.Prog { src; jit }) in
  (match log_dir with
  | Some dir ->
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      List.iter
        (fun (m, a, final) ->
          let path =
            Filename.concat dir (Divergence.mech_name m ^ ".audit")
          in
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Divergence.log_string ~final_hash:final a));
          Printf.eprintf "wrote %s\n" path)
        o.Divergence.o_runs
  | None -> ());
  print_string o.Divergence.o_text;
  if o.Divergence.o_findings <> [] then exit 1

(** {1 chaos / chaos-replay: seeded adversarial execution} *)

let chaos_cmd seeds mechs_str prog jit minimize clobber no_sigmicro repro_dir =
  let module Chaos = Harness.Chaos in
  let mechs =
    String.split_on_char ',' mechs_str
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match Divergence.mech_of_string s with
           | Some m -> m
           | None ->
               Printf.eprintf "unknown mechanism: %s\n" s;
               exit 2)
  in
  let rates =
    { Sim_chaos.Chaos.default_rates with Sim_chaos.Chaos.clobber_rate = clobber }
  in
  let wspecs =
    [ Chaos.Wmicro { iters = 40; nr = Defs.sys_getpid } ]
    @ (if no_sigmicro then [] else [ Chaos.Wsigmicro { iters = 8 } ])
    @
    match prog with
    | Some path -> [ Chaos.Wprog { path; jit } ]
    | None -> []
  in
  let r =
    Chaos.sweep ~rates ~minimize_failures:minimize ~seeds ~mechs
      ~read:read_file wspecs
  in
  print_string r.Chaos.rp_text;
  if r.Chaos.rp_failures <> [] then begin
    (match repro_dir with
    | Some dir ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        List.iteri
          (fun i x ->
            let path =
              Filename.concat dir
                (Printf.sprintf "chaos-%s-seed%Ld-%d.repro"
                   (Divergence.mech_name x.Chaos.x_mech)
                   x.Chaos.x_seed i)
            in
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Chaos.repro_to_string (Chaos.repro_of_failure x)));
            Printf.eprintf "wrote %s\n" path)
          r.Chaos.rp_failures
    | None -> ());
    exit 1
  end

let chaos_replay_cmd file =
  let module Chaos = Harness.Chaos in
  match Chaos.repro_of_string (read_file file) with
  | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      exit 2
  | Ok r -> (
      Printf.printf "replaying %s under %s with %d forced injection(s):\n"
        (Chaos.wspec_to_string r.Chaos.r_wspec)
        (Divergence.mech_name r.Chaos.r_mech)
        (List.length r.Chaos.r_injections);
      List.iter
        (fun j ->
          Printf.printf "  %s\n" (Sim_chaos.Chaos.describe j))
        r.Chaos.r_injections;
      match Chaos.replay ~read:read_file r with
      | Some d ->
          Printf.printf
            "reproduced: tid %d diverges at app event %d: %s\n" d.Audit.d_tid
            (d.Audit.d_index + 1) d.Audit.d_reason
      | None ->
          Printf.printf
            "did NOT reproduce: raw and %s agree under the forced set (stale \
             reproducer?)\n"
            (Divergence.mech_name r.Chaos.r_mech);
          exit 1)

(** Gate the threaded-code block engine against the interpreter: run
    every mechanism over the microbench, the signal-heavy workload and
    (optionally) a minicc program, requiring bit-identical audit logs,
    cycle clocks and state hashes with blocks on vs. off — then repeat
    under seeded chaos, where the injection streams themselves must
    also align.  Exits 1 on any mismatch. *)
let engine_check_cmd seeds prog jit =
  let module Chaos = Harness.Chaos in
  let workloads =
    [
      ("micro", Divergence.Micro { iters = 120; nr = Defs.sys_getpid });
      ("sigmicro", Divergence.Sigmicro { iters = 8 });
    ]
    @
    match prog with
    | Some path -> [ ("prog", Divergence.Prog { src = read_file path; jit }) ]
    | None -> []
  in
  let failures = ref 0 in
  let check label mech (ok, detail) =
    Printf.printf "  %-10s %-10s %s\n%!" label
      (Divergence.mech_name mech)
      detail;
    if not ok then incr failures
  in
  Printf.printf "engine identity (blocks vs. interpreter):\n";
  List.iter
    (fun (wname, w) ->
      List.iter
        (fun m -> check wname m (Divergence.engine_identical m w))
        Divergence.all_mechs)
    workloads;
  Printf.printf "engine identity under chaos (%d seeds):\n" seeds;
  let mechs = Array.of_list Divergence.all_mechs in
  for seed = 1 to seeds do
    let m = mechs.((seed - 1) mod Array.length mechs) in
    check
      (Printf.sprintf "seed %d" seed)
      m
      (Chaos.engine_identical_chaos ~seed:(Int64.of_int seed) m
         (Divergence.Micro { iters = 60; nr = Defs.sys_getpid }))
  done;
  if !failures > 0 then begin
    Printf.printf "ENGINE CHECK FAILED: %d mismatch(es)\n" !failures;
    exit 1
  end
  else Printf.printf "engine check passed: block engine is bit-identical\n"

(** {1 policy: syscall-flow-integrity} *)

let load_graph f =
  match Policy.graph_of_string ~file:f (read_file f) with
  | Ok g -> g
  | Error e ->
      prerr_endline e;
      exit 2

let policy_extract_cmd file jit out =
  let g =
    Minicc.Flowgraph.extract ~name:(Filename.basename file) ~jit
      (read_file file)
  in
  Printf.eprintf "%s" (Policy.graph_summary ~syscall_name:Defs.syscall_name g);
  let text = Policy.graph_to_string g in
  match out with
  | Some path ->
      write_out path text;
      Printf.eprintf "wrote %s\n" path
  | None -> print_string text

(* check and enforce share a runner; [mode] is the difference (check
   is report-only and exits 1 on any recorded violation, enforce
   injects -EPERM / kills and propagates the guest's exit code). *)
let policy_run ~mode file policy_file mech jit preserve_xstate =
  let g = load_graph policy_file in
  let p = Policy.create ~mode g in
  let _k, t, _log = execute ~policy:p file mech jit preserve_xstate in
  print_string (Policy.summary ~syscall_name:Defs.syscall_name p);
  (p, t)

let policy_check_cmd file policy_file mech jit preserve_xstate =
  let p, _t =
    policy_run ~mode:Policy.Report file policy_file mech jit preserve_xstate
  in
  if Policy.violation_count p > 0 then exit 1

let policy_enforce_cmd file policy_file mech jit preserve_xstate mode_str =
  let mode =
    match Policy.mode_of_string mode_str with
    | Some (Policy.Deny | Policy.Kill) as m -> Option.get m
    | _ ->
        Printf.eprintf
          "policy enforce: --mode must be enforce or kill (got %s)\n" mode_str;
        exit 2
  in
  let p, t = policy_run ~mode file policy_file mech jit preserve_xstate in
  ignore (p : Policy.t);
  if t.Types.exit_code <> 0 then exit t.Types.exit_code

(* One-shot: static extraction + report-mode run of the same program,
   so "does my program conform to its own compiled flow graph" is a
   single command. *)
let policy_report_cmd file mech jit preserve_xstate =
  let g =
    Minicc.Flowgraph.extract ~name:(Filename.basename file) ~jit
      (read_file file)
  in
  let p = Policy.create ~mode:Policy.Report g in
  let _k, _t, _log = execute ~policy:p file mech jit preserve_xstate in
  print_string (Policy.summary ~syscall_name:Defs.syscall_name p);
  if Policy.violation_count p > 0 then exit 1

let policy_attack_cmd seeds iters mechs_str report_out =
  let module Sfi = Harness.Sfi in
  let mechs =
    String.split_on_char ',' mechs_str
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun name ->
           match Divergence.mech_of_string name with
           | Some m -> m
           | None ->
               Printf.eprintf "unknown mechanism %S\n" name;
               exit 2)
    |> List.filter (fun m -> m <> Divergence.Raw)
  in
  let mechs = if mechs = [] then Sfi.interposed else mechs in
  let ok_forced, rep_forced = Sfi.attack_report ~mechs () in
  let ok_sweep, rep_sweep =
    Sfi.chaos_attack_sweep ~seeds ~iters ~mechs ()
  in
  let text = rep_forced ^ "\n" ^ rep_sweep in
  print_string text;
  (match report_out with
  | Some path ->
      write_out path text;
      Printf.eprintf "wrote %s\n" path
  | None -> ());
  if not (ok_forced && ok_sweep) then begin
    prerr_endline "POLICY ATTACK GATE FAILED: undetected escape(s)";
    exit 1
  end

let disasm_cmd file =
  let src = read_file file in
  let text, data = Minicc.Codegen.compile src in
  Printf.printf "; text at 0x%x (%d bytes), data at 0x%x (%d bytes)\n"
    text.Sim_asm.Asm.base
    (String.length text.Sim_asm.Asm.bytes)
    data.Sim_asm.Asm.base
    (String.length data.Sim_asm.Asm.bytes);
  List.iter
    (fun l -> Format.printf "%a@." Sim_isa.Disasm.pp_line l)
    (Sim_isa.Disasm.sweep ~base:text.Sim_asm.Asm.base text.Sim_asm.Asm.bytes)

let pin_cmd file =
  let src = read_file file in
  let k = Kernel.create () in
  setup_fs k;
  let t = Kernel.spawn k (Minicc.Codegen.compile_to_image src) in
  let pin = Sim_pin.Pin.attach k t in
  if not (Kernel.run_until_exit k) then
    prerr_endline "warning: program did not terminate";
  Printf.printf "register-preservation expectations across syscalls:\n";
  let show e =
    Printf.printf "  %-6s expected preserved across %s\n"
      (Sim_pin.Pin.reg_class_to_string e.Sim_pin.Pin.reg)
      (Defs.syscall_name e.Sim_pin.Pin.across_syscall)
  in
  List.iter show (Sim_pin.Pin.xstate_expectations pin);
  List.iter show (Sim_pin.Pin.gpr_expectations pin);
  Printf.printf "expects xstate preservation: %b\n"
    (Sim_pin.Pin.expects_xstate pin)

let summary_arg =
  Arg.(
    value & flag
    & info [ "summary" ]
        ~doc:
          "After the run, print dispatch-path counts and per-syscall \
           latency percentiles from the machine-wide event tracer.")

let out_arg =
  Arg.(
    value
    & opt string "trace.json"
    & info [ "o"; "out" ] ~docv:"PATH"
        ~doc:"Output path for the Chrome trace-event JSON.")

let no_blocks_arg =
  Arg.(
    value & flag
    & info [ "no-blocks" ]
        ~doc:
          "Force the pure per-instruction interpreter: disable the \
           threaded-code block engine for this run (equivalent to \
           SIM_NO_BLOCKS=1 in the environment).")

let run_t =
  Cmd.v (Cmd.info "run" ~doc:"Run a minicc program under an interposer")
    Term.(
      const run_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg $ summary_arg
      $ no_blocks_arg)

let trace_t =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a minicc program with the machine-wide tracer on and export \
          the event timeline as Chrome trace-event JSON (loadable in \
          Perfetto / chrome://tracing)")
    Term.(
      const trace_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg $ out_arg
      $ no_blocks_arg)

let report_t =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a minicc program with the machine-wide tracer on and print \
          the human-readable report: dispatch paths, rewrites and other \
          events, syscall-latency percentiles")
    Term.(
      const report_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg
      $ no_blocks_arg)

let format_arg =
  Arg.(
    value
    & opt string "plain"
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format for the counter summary: plain (perf-stat style), \
           prometheus (text exposition), or json.")

let folded_out_arg =
  Arg.(
    value
    & opt string "prof.folded"
    & info [ "o"; "out" ] ~docv:"PATH"
        ~doc:
          "Output path for the collapsed-stack profile (feed to \
           flamegraph.pl).")

let period_arg =
  Arg.(
    value & opt int 997
    & info [ "period" ] ~docv:"CYCLES"
        ~doc:
          "Sampling period in simulated cycles (a prime by default, so the \
           sampler does not alias with loop periods).")

let stat_t =
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Run a minicc program with the metrics registry attached and print \
          a perf-stat-style counter summary (or the raw Prometheus/JSON \
          exposition)")
    Term.(
      const stat_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg $ format_arg
      $ no_blocks_arg)

let profile_t =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a minicc program under the cycle-clock sampling profiler and \
          write collapsed stacks (flamegraph.pl input)")
    Term.(
      const profile_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg
      $ folded_out_arg $ period_arg $ no_blocks_arg)

let flame_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flame" ] ~docv:"PATH"
        ~doc:
          "Write the unwound call-site stacks in collapsed form \
           (comm;frames... count — feed to flamegraph.pl, same format as \
           simtrace profile).")

let sites_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"PATH"
        ~doc:"Write the full per-site ledger (counters, path mix, latency \
              percentiles, rewrite provenance) as JSON.")

let sites_limit_arg =
  Arg.(
    value & opt int 24
    & info [ "limit" ] ~docv:"N"
        ~doc:"Rows to show in the cost-sorted site table.")

let sites_t =
  Cmd.v
    (Cmd.info "sites"
       ~doc:
         "Run a minicc program with the syscall-provenance recorder \
          attached: a bounded rbp-chain unwind at every audited syscall \
          keys a per-call-site ledger (dispatch-path mix, kernel-cycle \
          percentiles, rewrite provenance).  Prints the cost-sorted site \
          table; --flame writes collapsed unwind stacks, --out the ledger \
          JSON")
    Term.(
      const sites_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg $ flame_arg
      $ sites_out_arg $ sites_limit_arg $ no_blocks_arg)

let audit_out_arg =
  Arg.(
    value
    & opt string "prog.audit"
    & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output path for the audit log.")

let checkpoint_arg =
  Arg.(
    value & opt int 64
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Take a full state-hash checkpoint every N application syscalls.")

let logfile_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG.audit")

let mechs_arg =
  Arg.(
    value
    & opt string "raw,sud,zpoline,lazypoline,seccomp,ptrace"
    & info [ "mechanisms" ] ~docv:"M1,M2,..."
        ~doc:
          "Comma-separated mechanisms to audit: raw, sud, zpoline, \
           lazypoline, seccomp, ptrace.")

let log_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-dir" ] ~docv:"DIR"
        ~doc:"Write each mechanism's serialized audit log into DIR.")

let record_t =
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a minicc program with the divergence auditor attached and \
          write the deterministic audit log: every syscall (decoded, with \
          result), signal delivery, sigreturn and scheduling point, plus \
          incremental state-hash checkpoints and the final state hash")
    Term.(
      const record_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg
      $ audit_out_arg $ checkpoint_arg)

let debug_prog_arg =
  Arg.(
    value
    & pos 1 (some file) None
    & info [] ~docv:"PROG.c"
        ~doc:
          "The minicc program the log was recorded from (defaults to the \
           log's own %file header).")

let debug_mech_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "m"; "mech" ] ~docv:"MECH"
        ~doc:
          "Replay the log under this mechanism instead of the recorded one \
           (raw, sud, zpoline, lazypoline, seccomp, ptrace).  Verification \
           then compares the mechanism-neutral application stream rather \
           than full rows.")

let seek_site_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "seek-site" ] ~docv:"PC"
        ~doc:
          "Position the cursor at the first audited syscall issued from \
           call site PC (hex accepted), using the replay's provenance \
           ledger, before the REPL or script runs.")

let seek_request_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seek-request" ] ~docv:"RID"
        ~doc:
          "Position the cursor where request RID's handling begins (its \
           claiming read), using the log's .spans sidecar, before the REPL \
           or script runs.")

let script_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "script" ] ~docv:"FILE"
        ~doc:
          "Run a scripted session instead of the interactive REPL: one \
           command per line, # comments; exits 1 at the first failing \
           command or assertion (for CI).")

let debug_t =
  Cmd.v
    (Cmd.info "debug"
       ~doc:
         "Time-travel debugger on a recorded audit log: seek to any app \
          syscall, step and reverse-step, continue / reverse-continue to a \
          register or memory-word watchpoint (reverse locates the change by \
          binary search over checkpoint prefixes), and inspect the replayed \
          machine (strace-decoded events, registers, memory, /proc, \
          cross-position state deltas).  Replays are verified against the \
          log as they run")
    Term.(
      const debug_cmd $ logfile_arg $ debug_prog_arg $ debug_mech_arg
      $ script_arg $ seek_request_arg $ seek_site_arg $ no_blocks_arg)

let flavour_arg =
  Arg.(
    value
    & opt flavour_conv Workloads.Webserver.Nginx_like
    & info [ "flavour" ] ~docv:"FLAVOUR"
        ~doc:"Web server flavour: nginx (sendfile) or lighttpd (read+write).")

let size_kb_arg =
  Arg.(
    value & opt int 8
    & info [ "size-kb" ] ~docv:"KB" ~doc:"Served file size in KiB.")

let conns_arg =
  Arg.(
    value & opt int 16
    & info [ "conns" ] ~docv:"N"
        ~doc:"Keepalive connections the load generator keeps in flight.")

let requests_arg =
  Arg.(
    value & opt int 2000
    & info [ "requests" ] ~docv:"N"
        ~doc:"Total requests to issue (the run self-terminates after them).")

let spans_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"PATH"
        ~doc:
          "Write the exemplar requests as Perfetto-loadable request tracks \
           (one lane per request, phase slices) to PATH.")

let spans_record_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"LOG"
        ~doc:
          "Also write the audit log of the run to LOG and the exemplar \
           index to LOG.spans, ready for simtrace debug --seek-request.")

let spans_t =
  Cmd.v
    (Cmd.info "spans"
       ~doc:
         "Run the wrk-driven web-server macrobench with the request-flow \
          span recorder attached and print the causal-phase attribution: \
          machine-wide phase split, per-syscall kernel cycles, request \
          latency percentiles and the slowest-request exemplars with their \
          per-phase breakdown and audit event windows.  Optionally exports \
          Perfetto request tracks and records a debuggable audit log + \
          spans sidecar")
    Term.(
      const spans_cmd $ mech_arg $ flavour_arg $ size_kb_arg $ conns_arg
      $ requests_arg $ spans_out_arg $ spans_record_arg $ no_blocks_arg)

let replay_t =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run the workload a recorded audit log came from and verify the \
          streams and state hashes are bit-identical; exits 1 on the first \
          divergent line")
    Term.(const replay_cmd $ logfile_arg)

let diff_t =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Run the same program under each mechanism, diff the audit streams \
          modulo mechanism-private events, and on mismatch bisect to the \
          first divergent syscall and dump a side-by-side register/page \
          delta; exits 1 on any divergence")
    Term.(const diff_cmd $ file_arg $ mechs_arg $ jit_arg $ log_dir_arg)

let seeds_arg =
  Arg.(
    value & opt int 10
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Number of chaos seeds to sweep (seeds 1..N, deterministic).")

let chaos_prog_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"PROG.c"
        ~doc:
          "Optional minicc program to include as a chaos workload (with \
           --jit, through the JIT driver).")

let minimize_arg =
  Arg.(
    value & flag
    & info [ "minimize" ]
        ~doc:
          "On divergence, shrink the injection set to a minimal forced \
           reproducer by greedy bisection.")

let clobber_arg =
  Arg.(
    value & opt int 0
    & info [ "clobber" ] ~docv:"RATE"
        ~doc:
          "Per-65536 rate of callee-saved register clobbers at hook \
           interceptions — a deliberate interposer bug the divergence gate \
           must catch (self-test; 0 disables).")

let no_sigmicro_arg =
  Arg.(
    value & flag
    & info [ "no-sigmicro" ]
        ~doc:"Skip the built-in signal-handler-rich sigmicro workload.")

let repro_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "repro-dir" ] ~docv:"DIR"
        ~doc:"Write a replayable .repro file per divergence into DIR.")

let chaos_t =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Seeded adversarial sweep: run workloads under each mechanism with \
          deterministic fault injection (transient errnos, async signals at \
          fuzzed boundaries, preemption biased into interposer hot windows) \
          and fail on any application-stream divergence from an identically \
          fuzzed raw run; exits 1 and dumps minimal reproducers on failure")
    Term.(
      const chaos_cmd $ seeds_arg $ mechs_arg $ chaos_prog_arg $ jit_arg
      $ minimize_arg $ clobber_arg $ no_sigmicro_arg $ repro_dir_arg)

let chaos_replay_t =
  Cmd.v
    (Cmd.info "chaos-replay"
       ~doc:
         "Replay a % simtrace-chaos/1 reproducer: force its injection set \
          into a raw and an interposed run and report whether the recorded \
          divergence reproduces; exits 1 if it does not")
    Term.(
      const chaos_replay_cmd
      $ Arg.(
          required & pos 0 (some file) None & info [] ~docv:"FILE.repro"))

let disasm_t =
  Cmd.v (Cmd.info "disasm" ~doc:"Compile a minicc program and disassemble it")
    Term.(const disasm_cmd $ file_arg)

let engine_check_t =
  Cmd.v
    (Cmd.info "engine-check"
       ~doc:
         "Verify the threaded-code block engine is bit-identical to the \
          per-instruction interpreter: audit logs, cycle clocks and state \
          hashes must match across every mechanism, plus seeded chaos runs \
          where the injection streams must also align; exits 1 on any \
          mismatch")
    Term.(const engine_check_cmd $ seeds_arg $ chaos_prog_arg $ jit_arg)

let pin_t =
  Cmd.v
    (Cmd.info "pin"
       ~doc:"Run the Pin-style register-preservation analysis on a program")
    Term.(const pin_cmd $ file_arg)

let policy_file_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "policy" ] ~docv:"FILE"
        ~doc:"The % simtrace-policy/1 flow-graph artifact to enforce.")

let policy_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"PATH"
        ~doc:"Write the policy artifact to PATH instead of stdout.")

let policy_mode_arg =
  Arg.(
    value & opt string "enforce"
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Verdict on violation: enforce (inject -EPERM) or kill \
           (SIGSYS-style task-group kill).")

let attack_iters_arg =
  Arg.(
    value & opt int 12
    & info [ "iters" ] ~docv:"N"
        ~doc:"Syscall-loop iterations of the attack workload.")

let attack_report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"PATH"
        ~doc:"Also write the detection report to PATH (for CI artifacts).")

let policy_t =
  let extract_t =
    Cmd.v
      (Cmd.info "extract"
         ~doc:
           "Compile a minicc program (with --jit, through the JIT driver) \
            and emit its syscall-flow graph — nodes with call-site PCs, \
            successor edges, per-compartment (pkey) syscall sets — as a \
            versioned % simtrace-policy/1 artifact")
      Term.(const policy_extract_cmd $ file_arg $ jit_arg $ policy_out_arg)
  in
  let check_t =
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Run a program under a report-only policy: every dispatch is \
            checked against the flow graph but nothing is denied; exits 1 \
            if any violation was recorded")
      Term.(
        const policy_check_cmd $ file_arg $ policy_file_arg $ mech_arg
        $ jit_arg $ xstate_arg)
  in
  let enforce_t =
    Cmd.v
      (Cmd.info "enforce"
         ~doc:
           "Run a program with the policy enforced in the kernel's \
            dispatcher: out-of-graph syscalls are denied with -EPERM \
            (--mode enforce) or kill the task group (--mode kill)")
      Term.(
        const policy_enforce_cmd $ file_arg $ policy_file_arg $ mech_arg
        $ jit_arg $ xstate_arg $ policy_mode_arg)
  in
  let report_t =
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Extract a program's flow graph and immediately verify the \
            program against it in report mode — one-shot conformance; \
            exits 1 on any violation")
      Term.(
        const policy_report_cmd $ file_arg $ mech_arg $ jit_arg $ xstate_arg)
  in
  let attack_t =
    Cmd.v
      (Cmd.info "attack"
         ~doc:
           "Adversarial detection gate: force a register clobber per \
            clobber class and mechanism, then run a seeded clobber-fuzz \
            sweep under an enforcing policy; every chaos-induced \
            out-of-graph escape must be flagged by the engine at its exact \
            syscall index.  Exits 1 on any undetected escape")
      Term.(
        const policy_attack_cmd $ seeds_arg $ attack_iters_arg $ mechs_arg
        $ attack_report_arg)
  in
  Cmd.group
    (Cmd.info "policy"
       ~doc:
         "Syscall-flow-integrity: extract minicc flow graphs, check or \
          enforce them in the dispatcher, and validate detection against \
          the chaos attacker")
    [ extract_t; check_t; enforce_t; report_t; attack_t ]

let () =
  let info =
    Cmd.info "simtrace" ~version:"1.0"
      ~doc:"strace/objdump/pin for the lazypoline simulator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_t; trace_t; report_t; stat_t; profile_t; sites_t; record_t;
            replay_t; debug_t; spans_t; diff_t; chaos_t; chaos_replay_t;
            engine_check_t; disasm_t; pin_t; policy_t;
          ]))
