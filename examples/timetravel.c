/* Time-travel debugging workload (simtrace debug, DESIGN.md section 13).
   Maps a scratch page at 0x9000, spins a getpid loop, and half-way
   through stores a marker word into the page with poke64.  A memory
   watchpoint on 0x9000 gives reverse-continue a single well-defined
   change to locate by binary search over the checkpoint grid; the
   getpid loop gives seek/step a long run of identical events so any
   replay drift is immediately visible.  Works both statically compiled
   and under the minicc JIT driver (--jit). */
long main() {
  long i;
  /* mmap(0x9000, 4096, PROT_READ|PROT_WRITE,
          MAP_FIXED|MAP_ANONYMOUS, -1, 0) */
  syscall(9, 36864, 4096, 3, 48, 0 - 1, 0);
  for (i = 0; i < 24; i = i + 1) {
    syscall(39);
    if (i == 11) poke64(36864, 4242);
  }
  return 0;
}
