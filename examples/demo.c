/* Demo program for the machine-wide event tracer.
 *
 *   dune exec bin/simtrace.exe -- trace examples/demo.c --out trace.json
 *   dune exec bin/simtrace.exe -- report examples/demo.c
 *   dune exec bin/simtrace.exe -- run --summary examples/demo.c
 *
 * The first pass through the loop takes lazypoline's SUD slow path
 * (SIGSYS, selector flips, site rewrite); every later pass takes the
 * rewritten call-rax fast path.  The trace shows the transition.
 */
long main() {
  char buf[64];
  long i = 0;
  while (i < 8) {
    long pid = syscall(39);                        /* getpid */
    syscall(1, 1, "tick\n", 5);                    /* write */
    i = i + 1;
  }
  long fd = syscall(2, "/etc/hosts", 0, 0);        /* open */
  if (fd < 0) return 1;
  long n = syscall(0, fd, buf, 64);                /* read */
  syscall(3, fd);                                  /* close */
  syscall(1, 1, buf, n);                           /* write back */
  return 0;
}
