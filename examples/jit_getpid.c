/* The Section V-A exhaustiveness workload: a C application compiled
   and run "tcc -run"-style by the minicc JIT driver (pass --jit).
   The syscall(39) below is emitted into freshly-published JIT code
   pages at runtime — the call zpoline's ahead-of-time rewrite pass
   provably misses.  CI diffs the audit streams of this program across
   all six interposition mechanisms as a gating step. */
long main() {
  char msg[32];
  msg[0] = 'p'; msg[1] = 'i'; msg[2] = 'd'; msg[3] = ':'; msg[4] = ' ';
  long pid = syscall(39);          /* the introduced getpid */
  msg[5] = '0' + pid % 10;
  msg[6] = 10;
  syscall(1, 1, msg, 7);
  return 0;
}
